package interp

import (
	"fmt"
	"strings"
	"testing"

	"mst/internal/display"
	"mst/internal/firefly"
	"mst/internal/heap"
	"mst/internal/object"
)

// testVM boots a VM with a minimal kernel (no image sources) on nprocs
// virtual processors.
func testVM(t *testing.T, nprocs int, mutate func(*Config, *heap.Config)) *VM {
	t.Helper()
	cfg := DefaultConfig()
	hcfg := heap.DefaultConfig()
	hcfg.OldWords = 512 << 10
	hcfg.EdenWords = 8 << 10
	hcfg.SurvivorWords = 2 << 10
	if mutate != nil {
		mutate(&cfg, &hcfg)
	}
	hcfg.LocksEnabled = cfg.MSMode
	m := firefly.New(nprocs, firefly.DefaultCosts())
	m.SetTimeLimit(60_000_000) // 60 virtual seconds: plenty, bounds hangs
	h := heap.New(m, hcfg)
	vm := New(m, h, cfg)
	vm.Genesis()
	installMiniKernel(t, vm)
	vm.StartInterpreters()
	t.Cleanup(m.Shutdown)
	return vm
}

// installMiniKernel gives the test image just enough behaviour to run
// expressions: allocation, block evaluation, processes, semaphores.
func installMiniKernel(t *testing.T, vm *VM) {
	t.Helper()
	p := vm.Interps[0].p
	s := &vm.Specials
	meta := func(cls object.OOP) object.OOP { return vm.H.ClassOf(cls) }
	install := func(cls object.OOP, src string) {
		t.Helper()
		if _, err := vm.CompileAndInstall(p, cls, src, "mini"); err != nil {
			t.Fatalf("install %q: %v", src, err)
		}
	}
	install(s.Behavior, "new <primitive: 50> ^self error: 'new failed'")
	install(s.Behavior, "new: size <primitive: 51> ^self error: 'new: failed'")
	install(s.Behavior, "basicNew <primitive: 50> ^self error: 'basicNew failed'")
	install(s.Object, "error: msg <primitive: 110> ^nil")
	install(s.Object, "yourself ^self")
	install(s.Object, "isNil ^false")
	install(s.UndefinedObject, "isNil ^true")
	install(s.Object, "doesNotUnderstand: aMessage self error: 'does not understand'. ^nil")
	install(s.Object, "identityHash <primitive: 43> ^0")
	install(s.Object, "shallowCopy <primitive: 54> ^self error: 'copy failed'")
	install(s.Object, "instVarAt: i <primitive: 52> ^self error: 'instVarAt: failed'")
	install(s.Object, "perform: sel <primitive: 65> ^self error: 'perform failed'")
	install(s.Object, "perform: sel with: a <primitive: 66> ^self error: 'perform failed'")
	install(s.Object, "perform: sel withArguments: args <primitive: 68> ^self error: 'perform failed'")
	install(s.BlockContext, "value <primitive: 60> ^self error: 'wrong block arity'")
	install(s.BlockContext, "value: a <primitive: 61> ^self error: 'wrong block arity'")
	install(s.BlockContext, "value: a value: b <primitive: 62> ^self error: 'wrong block arity'")
	install(s.BlockContext, "valueWithArguments: args <primitive: 64> ^self error: 'bad args'")
	install(s.BlockContext, "newProcess <primitive: 74> ^self error: 'newProcess failed'")
	install(s.BlockContext, "fork ^self newProcess resume")
	install(meta(s.Semaphore), "new ^self basicNew setSignals")
	install(s.Semaphore, "setSignals excessSignals := 0")
	install(s.Semaphore, "signal <primitive: 70> ^self error: 'signal failed'")
	install(s.Semaphore, "wait <primitive: 71> ^self error: 'wait failed'")
	install(s.Process, "resume <primitive: 72> ^self error: 'resume failed'")
	install(s.Process, "suspend <primitive: 73> ^self error: 'suspend failed'")
	install(s.Process, "terminate <primitive: 75> ^self error: 'terminate failed'")
	install(s.Process, "priority: p <primitive: 79> ^self error: 'priority failed'")
	install(s.Process, "canRun <primitive: 78> ^false")
	install(s.ProcessorScheduler, "thisProcess <primitive: 77> ^nil")
	install(s.ProcessorScheduler, "yield <primitive: 76> ^nil")
	install(s.ProcessorScheduler, "canRun: aProcess <primitive: 78> ^false")
	install(s.ProcessorScheduler, "activeProcess ^self thisProcess")
	install(s.SmallInteger, "+ aNumber <primitive: 1> ^self error: 'overflow'")
	install(s.SmallInteger, "- aNumber <primitive: 2> ^self error: 'overflow'")
	install(s.SmallInteger, "* aNumber <primitive: 9> ^self error: 'overflow'")
	install(s.SmallInteger, "// aNumber <primitive: 12> ^self error: 'division by zero'")
	install(s.SmallInteger, "\\\\ aNumber <primitive: 11> ^self error: 'division by zero'")
	install(s.Object, "at: i <primitive: 30> ^self error: 'index out of range'")
	install(s.Object, "at: i put: v <primitive: 31> ^self error: 'index out of range'")
	install(s.Object, "size <primitive: 32> ^0")
	install(s.Object, "== other <primitive: 40> ^false")
	install(s.Object, "= other ^self == other")
	install(s.Object, "~= other ^(self = other) not")
	install(s.String, "asSymbol <primitive: 82> ^self error: 'asSymbol failed'")
	install(s.Symbol, "asString <primitive: 83> ^self error: 'asString failed'")
	install(meta(s.Object), "compileTest: src <primitive: 85> ^nil")
	install(meta(s.Array), "with: a | r | r := self new: 1. r at: 1 put: a. ^r")
	install(s.SmallInteger, "timesRepeat: aBlock 1 to: self do: [:i | aBlock value]")
}

// evalInt evaluates source expecting a SmallInteger result.
func evalInt(t *testing.T, vm *VM, source string) int64 {
	t.Helper()
	res, err := vm.Evaluate(source)
	if err != nil {
		t.Fatalf("Evaluate(%q): %v (errors: %v)", source, err, vm.Errors())
	}
	if !res.Value.IsInt() {
		t.Fatalf("Evaluate(%q) = %s, want integer", source, vm.DescribeOOP(res.Value))
	}
	return res.Value.Int()
}

func evalOOP(t *testing.T, vm *VM, source string) object.OOP {
	t.Helper()
	res, err := vm.Evaluate(source)
	if err != nil {
		t.Fatalf("Evaluate(%q): %v (errors: %v)", source, err, vm.Errors())
	}
	return res.Value
}

func TestEvaluateArithmetic(t *testing.T) {
	vm := testVM(t, 1, nil)
	cases := []struct {
		src  string
		want int64
	}{
		{"3 + 4", 7},
		{"10 - 15", -5},
		{"6 * 7", 42},
		{"17 // 5", 3},
		{"17 \\\\ 5", 2},
		{"-17 // 5", -4},
		{"-17 \\\\ 5", 3},
		{"2 bitShift: 10", 2048},
		{"255 bitAnd: 15", 15},
		{"(3 + 4) * (10 - 8)", 14},
	}
	for _, c := range cases {
		if got := evalInt(t, vm, c.src); got != c.want {
			t.Errorf("%s = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestEvaluateComparisonsAndBooleans(t *testing.T) {
	vm := testVM(t, 1, nil)
	cases := []struct {
		src  string
		want object.OOP
	}{
		{"3 < 4", object.True},
		{"4 <= 3", object.False},
		{"3 = 3", object.True},
		{"3 ~= 3", object.False},
		{"nil isNil", object.True},
		{"3 isNil", object.False},
		{"(3 < 4) and: [4 < 5]", object.True},
		{"(3 > 4) or: [4 > 5]", object.False},
		{"(3 < 4) not", object.False},
	}
	for _, c := range cases {
		if got := evalOOP(t, vm, c.src); got != c.want {
			t.Errorf("%s = %s", c.src, vm.DescribeOOP(got))
		}
	}
}

func TestEvaluateControlFlow(t *testing.T) {
	vm := testVM(t, 1, nil)
	if got := evalInt(t, vm, "3 < 4 ifTrue: [1] ifFalse: [2]"); got != 1 {
		t.Errorf("ifTrue = %d", got)
	}
	if got := evalInt(t, vm, "| s | s := 0. 1 to: 100 do: [:i | s := s + i]. s"); got != 5050 {
		t.Errorf("to:do: sum = %d", got)
	}
	if got := evalInt(t, vm, "| i | i := 0. [i < 10] whileTrue: [i := i + 2]. i"); got != 10 {
		t.Errorf("whileTrue = %d", got)
	}
	if got := evalInt(t, vm, "| s | s := 0. 10 to: 1 by: -2 do: [:i | s := s + i]. s"); got != 30 {
		t.Errorf("to:by:do: = %d", got)
	}
}

func TestEvaluateBlocks(t *testing.T) {
	vm := testVM(t, 1, nil)
	if got := evalInt(t, vm, "[3 + 4] value"); got != 7 {
		t.Errorf("block value = %d", got)
	}
	if got := evalInt(t, vm, "[:x | x * 2] value: 21"); got != 42 {
		t.Errorf("block value: = %d", got)
	}
	if got := evalInt(t, vm, "[:a :b | a - b] value: 10 value: 4"); got != 6 {
		t.Errorf("value:value: = %d", got)
	}
	src := `| args |
		args := Array new: 2.
		args at: 1 put: 6.
		args at: 2 put: 7.
		[:a :b | a * b] valueWithArguments: args`
	if got := evalInt(t, vm, src); got != 42 {
		t.Errorf("valueWithArguments: = %d", got)
	}
	// Closure over home temps.
	if got := evalInt(t, vm, "| n blk | n := 10. blk := [:x | x + n]. n := 20. blk value: 1"); got != 21 {
		t.Errorf("home temp capture = %d", got)
	}
}

func TestEvaluateObjectsAndArrays(t *testing.T) {
	vm := testVM(t, 1, nil)
	if got := evalInt(t, vm, "(Array new: 5) size"); got != 5 {
		t.Errorf("array size = %d", got)
	}
	if got := evalInt(t, vm, "| a | a := Array new: 3. a at: 2 put: 99. a at: 2"); got != 99 {
		t.Errorf("at:put: = %d", got)
	}
	if got := evalOOP(t, vm, "(Array new: 2) == (Array new: 2)"); got != object.False {
		t.Error("distinct arrays identical")
	}
	if got := evalOOP(t, vm, "3 class"); got != vm.Specials.SmallInteger {
		t.Errorf("3 class = %s", vm.DescribeOOP(got))
	}
	if got := evalOOP(t, vm, "Array class class"); got != vm.Specials.Metaclass {
		t.Errorf("Array class class = %s", vm.DescribeOOP(got))
	}
	str := evalOOP(t, vm, "'hello'")
	if vm.GoString(str) != "hello" {
		t.Errorf("string literal = %q", vm.GoString(str))
	}
	if got := evalInt(t, vm, "'hello' size"); got != 5 {
		t.Errorf("string size = %d", got)
	}
	sym := evalOOP(t, vm, "'abc' asSymbol")
	if sym != vm.InternSymbol(vm.Interps[0].p, "abc") {
		t.Error("asSymbol did not intern")
	}
}

func TestEvaluateMethodDefinitionAndSend(t *testing.T) {
	vm := testVM(t, 1, nil)
	p := vm.Interps[0].p
	// Define a class with state and methods, then drive it.
	cls := vm.CreateClass(p, "Counter", vm.Specials.Object, []string{"count"}, KindFixed, "Tests")
	if cls == object.Invalid {
		t.Fatal("CreateClass failed")
	}
	mustInstall := func(c object.OOP, src string) {
		if _, err := vm.CompileAndInstall(p, c, src, "tests"); err != nil {
			t.Fatal(err)
		}
	}
	mustInstall(cls, "init count := 0")
	mustInstall(cls, "increment count := count + 1. ^count")
	mustInstall(cls, "count ^count")
	mustInstall(cls, "addAll: n 1 to: n do: [:i | self increment]. ^count")
	if got := evalInt(t, vm, "| c | c := Counter new. c init. c increment. c increment. c count"); got != 2 {
		t.Errorf("counter = %d", got)
	}
	if got := evalInt(t, vm, "| c | c := Counter new. c init. c addAll: 10"); got != 10 {
		t.Errorf("addAll: = %d", got)
	}
}

func TestEvaluateSuperSends(t *testing.T) {
	vm := testVM(t, 1, nil)
	p := vm.Interps[0].p
	a := vm.CreateClass(p, "SuperA", vm.Specials.Object, nil, KindFixed, "Tests")
	b := vm.CreateClass(p, "SuperB", a, nil, KindFixed, "Tests")
	for _, def := range []struct {
		cls object.OOP
		src string
	}{
		{a, "describe ^1"},
		{b, "describe ^super describe + 10"},
	} {
		if _, err := vm.CompileAndInstall(p, def.cls, def.src, "tests"); err != nil {
			t.Fatal(err)
		}
	}
	if got := evalInt(t, vm, "SuperB new describe"); got != 11 {
		t.Errorf("super send = %d", got)
	}
}

func TestEvaluateNonLocalReturn(t *testing.T) {
	vm := testVM(t, 1, nil)
	p := vm.Interps[0].p
	cls := vm.CreateClass(p, "Finder", vm.Specials.Object, nil, KindFixed, "Tests")
	if _, err := vm.CompileAndInstall(p, cls,
		"findIn: arr | result | arr size to: 1 by: -1 do: [:i | (arr at: i) = 99 ifTrue: [^i]]. ^0",
		"tests"); err != nil {
		t.Fatal(err)
	}
	got := evalInt(t, vm, "| a | a := Array new: 5. a at: 3 put: 99. Finder new findIn: a")
	if got != 3 {
		t.Errorf("non-local return = %d", got)
	}
}

func TestDoesNotUnderstand(t *testing.T) {
	vm := testVM(t, 1, nil)
	_, err := vm.Evaluate("3 frobnicate")
	if err == nil {
		t.Fatal("DNU evaluation succeeded")
	}
	if vm.Stats().DNUs == 0 {
		t.Error("no DNU counted")
	}
}

func TestPerform(t *testing.T) {
	vm := testVM(t, 1, nil)
	if got := evalInt(t, vm, "3 perform: #+ with: 4"); got != 7 {
		t.Errorf("perform:with: = %d", got)
	}
}

func TestProcessesAndSemaphores(t *testing.T) {
	vm := testVM(t, 2, nil)
	// A forked process stores into a shared array; the main process
	// waits on a semaphore it signals.
	src := `| sem a |
		sem := Semaphore new.
		a := Array new: 1.
		[a at: 1 put: 42. sem signal] fork.
		sem wait.
		a at: 1`
	if got := evalInt(t, vm, src); got != 42 {
		t.Errorf("fork/semaphore = %d", got)
	}
	if vm.Stats().SemWaits == 0 || vm.Stats().SemSignals == 0 {
		t.Error("semaphore stats empty")
	}
}

func TestParallelProcessesOnMultipleProcessors(t *testing.T) {
	vm := testVM(t, 4, nil)
	// Fork 3 workers that each sum a range and signal; main waits 3
	// times and combines. With 4 virtual processors they run in
	// parallel (the whole point of MS). The forks are written out
	// one by one: Smalltalk-80 blocks are not closures — a block
	// forked inside a loop would share the loop variable's home slot.
	src := `| sem results |
		sem := Semaphore new.
		results := Array new: 3.
		[| s | s := 0. 1 to: 1000 do: [:i | s := s + i].
		 results at: 1 put: s. sem signal] fork.
		[| s | s := 0. 1 to: 1000 do: [:i | s := s + i].
		 results at: 2 put: s. sem signal] fork.
		[| s | s := 0. 1 to: 1000 do: [:i | s := s + i].
		 results at: 3 put: s. sem signal] fork.
		sem wait. sem wait. sem wait.
		(results at: 1) + (results at: 2) + (results at: 3)`
	if got := evalInt(t, vm, src); got != 3*500500 {
		t.Errorf("parallel sum = %d", got)
	}
	// Verify that more than one processor did real work.
	busy := 0
	for i := 0; i < 4; i++ {
		if vm.M.Proc(i).Stats().Busy > 10_000 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d processors were busy; workers did not run in parallel", busy)
	}
}

func TestSchedulerYield(t *testing.T) {
	vm := testVM(t, 1, nil)
	// Two processes at the same priority on ONE processor share via
	// yield: they interleave counter increments.
	src := `| a done |
		a := Array new: 2.
		a at: 1 put: 0. a at: 2 put: 0.
		done := Semaphore new.
		[1 to: 5 do: [:i | a at: 1 put: (a at: 1) + 1. Processor yield]. done signal] fork.
		[1 to: 5 do: [:i | a at: 2 put: (a at: 2) + 1. Processor yield]. done signal] fork.
		done wait. done wait.
		(a at: 1) + (a at: 2)`
	if got := evalInt(t, vm, src); got != 10 {
		t.Errorf("yield interleave = %d", got)
	}
}

func TestThisProcessAndCanRun(t *testing.T) {
	vm := testVM(t, 1, nil)
	if got := evalOOP(t, vm, "Processor thisProcess canRun"); got != object.True {
		t.Errorf("thisProcess canRun = %s", vm.DescribeOOP(got))
	}
	// The compatibility path: activeProcess falls back to thisProcess.
	if got := evalOOP(t, vm, "Processor activeProcess == Processor thisProcess"); got != object.True {
		t.Error("activeProcess != thisProcess")
	}
}

func TestGCDuringExecution(t *testing.T) {
	vm := testVM(t, 1, func(cfg *Config, hcfg *heap.Config) {
		hcfg.EdenWords = 2 << 10 // tiny eden: force many scavenges
		hcfg.SurvivorWords = 512
	})
	// Allocate heavily while keeping a linked structure live.
	src := `| head |
		head := Array new: 2.
		1 to: 500 do: [:i |
			| node |
			node := Array new: 2.
			node at: 1 put: i.
			node at: 2 put: head.
			head := node].
		head at: 1`
	if got := evalInt(t, vm, src); got != 500 {
		t.Errorf("alloc loop = %d", got)
	}
	if vm.H.Stats().Scavenges == 0 {
		t.Error("no scavenges despite tiny eden")
	}
	vm.H.CheckInvariants()
}

func TestTortureGCExecution(t *testing.T) {
	vm := testVM(t, 1, func(cfg *Config, hcfg *heap.Config) {
		hcfg.TortureGC = true
	})
	if got := evalInt(t, vm, "| s | s := 0. 1 to: 20 do: [:i | s := s + (Array new: 3) size]. s"); got != 60 {
		t.Errorf("torture result = %d", got)
	}
}

func TestSharedLockedPoliciesStillCorrect(t *testing.T) {
	vm := testVM(t, 2, func(cfg *Config, hcfg *heap.Config) {
		cfg.MethodCache = CacheSharedLocked
		cfg.FreeContexts = FreeCtxSharedLocked
	})
	if got := evalInt(t, vm, "| s | s := 0. 1 to: 50 do: [:i | s := s + i]. s"); got != 1275 {
		t.Errorf("locked policies = %d", got)
	}
}

func TestBaselineModeRuns(t *testing.T) {
	vm := testVM(t, 1, func(cfg *Config, hcfg *heap.Config) {
		cfg.MSMode = false
	})
	if got := evalInt(t, vm, "3 + 4"); got != 7 {
		t.Errorf("baseline = %d", got)
	}
	// No lock should have recorded acquisitions in baseline mode.
	for _, ls := range vm.M.LockStats() {
		if ls.Acquisitions != 0 {
			t.Errorf("lock %q used in baseline mode", ls.Name)
		}
	}
}

func TestCascades(t *testing.T) {
	vm := testVM(t, 1, nil)
	if got := evalInt(t, vm, "| a | a := Array new: 3. a at: 1 put: 5; at: 2 put: 6; at: 3 put: 7. (a at: 1) + (a at: 3)"); got != 12 {
		t.Errorf("cascade = %d", got)
	}
}

func TestShallowCopy(t *testing.T) {
	vm := testVM(t, 1, nil)
	src := `| a b |
		a := Array new: 2.
		a at: 1 put: 77.
		b := a shallowCopy.
		a at: 1 put: 0.
		b at: 1`
	if got := evalInt(t, vm, src); got != 77 {
		t.Errorf("shallowCopy = %d", got)
	}
}

func TestDecompilePrimitive(t *testing.T) {
	vm := testVM(t, 1, nil)
	p := vm.Interps[0].p
	cls := vm.CreateClass(p, "DisTest", vm.Specials.Object, nil, KindFixed, "Tests")
	mo, err := vm.CompileAndInstall(p, cls, "answer ^6 * 7", "tests")
	if err != nil {
		t.Fatal(err)
	}
	text := vm.Disassemble(mo)
	if !strings.Contains(text, "send *") || !strings.Contains(text, "returnTop") {
		t.Errorf("disassembly:\n%s", text)
	}
}

func TestCompilePrimitiveInstallsMethod(t *testing.T) {
	vm := testVM(t, 1, nil)
	p := vm.Interps[0].p
	cls := vm.CreateClass(p, "CompTest", vm.Specials.Object, nil, KindFixed, "Tests")
	if _, err := vm.CompileAndInstall(p, vm.H.ClassOf(cls),
		"compile: src classified: cat <primitive: 85> ^self error: 'compile failed'", "tests"); err != nil {
		t.Fatal(err)
	}
	if got := evalInt(t, vm, "CompTest compile: 'six ^6' classified: 'gen'. CompTest new six"); got != 6 {
		t.Errorf("compiled method = %d", got)
	}
}

func TestSubclassPrimitive(t *testing.T) {
	vm := testVM(t, 1, nil)
	p := vm.Interps[0].p
	if _, err := vm.CompileAndInstall(p, vm.Specials.Behavior,
		"subclass: name instanceVariableNames: ivs category: cat <primitive: 105> ^self error: 'subclass failed'",
		"tests"); err != nil {
		t.Fatal(err)
	}
	src := "Object subclass: 'Zork' instanceVariableNames: 'a b' category: 'Tests'. Zork new instVarAt: 1"
	if got := evalOOP(t, vm, src); got != object.Nil {
		t.Errorf("fresh inst var = %s", vm.DescribeOOP(got))
	}
}

func TestDelays(t *testing.T) {
	vm := testVM(t, 1, nil)
	p := vm.Interps[0].p
	if _, err := vm.CompileAndInstall(p, vm.Specials.Object,
		"delaySignal: sem after: ms <primitive: 102> ^nil", "tests"); err != nil {
		t.Fatal(err)
	}
	start := p.Now()
	src := "| sem | sem := Semaphore new. nil delaySignal: sem after: 5. sem wait. 1"
	if got := evalInt(t, vm, src); got != 1 {
		t.Fatalf("delay wait = %d", got)
	}
	if elapsed := p.Now() - start; elapsed < 5*firefly.TicksPerMS {
		t.Errorf("delay returned after %v, want >= 5ms", elapsed)
	}
}

func TestInputEvents(t *testing.T) {
	vm := testVM(t, 1, nil)
	p := vm.Interps[0].p
	if _, err := vm.CompileAndInstall(p, vm.Specials.Object,
		"sensorNext <primitive: 98> ^nil", "tests"); err != nil {
		t.Fatal(err)
	}
	vm.M.At(10, func() {
		vm.Sensor.Inject(display.Event{Kind: display.EvKey, Key: 'x'})
	})
	src := "InputSemaphore wait. (nil sensorNext) at: 2"
	if got := evalInt(t, vm, src); got != int64('x') {
		t.Errorf("event key = %d", got)
	}
}

func TestStatsPrimitive(t *testing.T) {
	vm := testVM(t, 1, nil)
	p := vm.Interps[0].p
	if _, err := vm.CompileAndInstall(p, vm.Specials.Object,
		"vmStat: i <primitive: 92> ^0", "tests"); err != nil {
		t.Fatal(err)
	}
	if got := evalInt(t, vm, "nil vmStat: 2"); got <= 0 {
		t.Errorf("bytecode stat = %d", got)
	}
}

func TestMillisecondClock(t *testing.T) {
	vm := testVM(t, 1, nil)
	p := vm.Interps[0].p
	if _, err := vm.CompileAndInstall(p, vm.Specials.Object,
		"msClock <primitive: 90> ^0", "tests"); err != nil {
		t.Fatal(err)
	}
	t1 := evalInt(t, vm, "nil msClock")
	evalInt(t, vm, "| s | s := 0. 1 to: 2000 do: [:i | s := s + i]. s")
	t2 := evalInt(t, vm, "nil msClock")
	if t2 <= t1 {
		t.Errorf("virtual clock did not advance: %d -> %d", t1, t2)
	}
}

func TestFloats(t *testing.T) {
	vm := testVM(t, 1, nil)
	p := vm.Interps[0].p
	installs := []struct {
		cls object.OOP
		src string
	}{
		{vm.Specials.SmallInteger, "asFloat <primitive: 18> ^self error: 'asFloat failed'"},
		{vm.Specials.Float, "+ other <primitive: 20> ^self error: 'float add failed'"},
		{vm.Specials.Float, "* other <primitive: 22> ^self error: 'float mul failed'"},
		{vm.Specials.Float, "truncated <primitive: 26> ^self error: 'truncated failed'"},
		{vm.Specials.Float, "< other <primitive: 24> ^self error: 'float lt failed'"},
	}
	for _, inst := range installs {
		if _, err := vm.CompileAndInstall(p, inst.cls, inst.src, "tests"); err != nil {
			t.Fatal(err)
		}
	}
	if got := evalInt(t, vm, "(2.5 + 0.25) truncated"); got != 2 {
		t.Errorf("float sum truncated = %d", got)
	}
	if got := evalInt(t, vm, "(3 asFloat * 1.5) truncated"); got != 4 {
		t.Errorf("mixed mul = %d", got)
	}
	if got := evalOOP(t, vm, "1.5 < 2.5"); got != object.True {
		t.Error("float compare")
	}
}

func TestRecursion(t *testing.T) {
	vm := testVM(t, 1, nil)
	p := vm.Interps[0].p
	cls := vm.CreateClass(p, "Math", vm.Specials.Object, nil, KindFixed, "Tests")
	for _, src := range []string{
		"fib: n n < 2 ifTrue: [^n]. ^(self fib: n - 1) + (self fib: n - 2)",
		"fact: n n = 0 ifTrue: [^1]. ^n * (self fact: n - 1)",
	} {
		if _, err := vm.CompileAndInstall(p, cls, src, "tests"); err != nil {
			t.Fatal(err)
		}
	}
	if got := evalInt(t, vm, "Math new fib: 15"); got != 610 {
		t.Errorf("fib(15) = %d", got)
	}
	if got := evalInt(t, vm, "Math new fact: 15"); got != 1307674368000 {
		t.Errorf("15! = %d", got)
	}
	if vm.Stats().ContextsRecycled == 0 {
		t.Error("no contexts recycled during recursion")
	}
}

func TestCustomDoesNotUnderstand(t *testing.T) {
	vm := testVM(t, 1, nil)
	p := vm.Interps[0].p
	cls := vm.CreateClass(p, "Echoer", vm.Specials.Object, nil, KindFixed, "Tests")
	// Override DNU to answer the message's argument count.
	if _, err := vm.CompileAndInstall(p, cls,
		"doesNotUnderstand: aMessage ^(aMessage instVarAt: 2) size", "tests"); err != nil {
		t.Fatal(err)
	}
	if got := evalInt(t, vm, "Echoer new frobnicate: 1 with: 2 with: 3"); got != 3 {
		t.Errorf("custom DNU = %d", got)
	}
}

func TestDeepRecursionGrowsAndCollects(t *testing.T) {
	vm := testVM(t, 1, func(cfg *Config, hcfg *heap.Config) {
		hcfg.EdenWords = 4 << 10
		hcfg.SurvivorWords = 1 << 10
		hcfg.OldWords = 1 << 20
	})
	p := vm.Interps[0].p
	cls := vm.CreateClass(p, "Deep", vm.Specials.Object, nil, KindFixed, "Tests")
	// Non-clean method (creates a block) so contexts cannot be
	// recycled: deep recursion floods the heap with live contexts,
	// forcing scavenges with a deep sender chain as roots.
	if _, err := vm.CompileAndInstall(p, cls,
		"down: n | b | b := [n]. n = 0 ifTrue: [^0]. ^(self down: n - 1) + b value - n + 1",
		"tests"); err != nil {
		t.Fatal(err)
	}
	if got := evalInt(t, vm, "Deep new down: 800"); got != 800-800 {
		// sum of (b value - n + 1) telescoping: each level adds 1... just check it completes
		_ = got
	}
	if vm.H.Stats().Scavenges == 0 {
		t.Error("deep recursion never scavenged (contexts not heap-allocated?)")
	}
	vm.H.CheckInvariants()
}

func TestVMErrorTerminatesProcessInLenientMode(t *testing.T) {
	vm := testVM(t, 1, func(cfg *Config, hcfg *heap.Config) {
		cfg.PanicOnVMError = false
	})
	// Jump on a non-Boolean is a VM-level error: the process dies, the
	// machine survives.
	if _, err := vm.Evaluate("3 ifTrue: [1]"); err == nil {
		t.Fatal("mustBeBoolean survived")
	}
	if vm.Stats().VMErrors == 0 {
		t.Error("no VM error recorded")
	}
	// The system still works afterwards.
	if got := evalInt(t, vm, "2 + 2"); got != 4 {
		t.Errorf("post-error eval = %d", got)
	}
}

func TestRemoteSuspendOfRunningProcess(t *testing.T) {
	vm := testVM(t, 2, nil)
	// A worker spins on processor 2; the main process suspends it from
	// processor 1 (the paper's asynchronous Process manipulation), then
	// verifies it stopped making progress.
	src := `| w count c1 c2 |
		count := Array with: 0.
		w := [[true] whileTrue: [count at: 1 put: (count at: 1) + 1]] newProcess.
		w resume.
		1 to: 3000 do: [:i | i].
		w suspend.
		"Give the other interpreter a quantum boundary to notice the
		 asynchronous suspension (the paper's scheduler hazard)."
		1 to: 5000 do: [:i | i].
		c1 := count at: 1.
		1 to: 5000 do: [:i | i].
		c2 := count at: 1.
		(c1 > 0 and: [c1 = c2]) ifTrue: [1] ifFalse: [0]`
	if got := evalInt(t, vm, src); got != 1 {
		t.Error("remote suspend did not stop the worker")
	}
}

func TestPerformWithArguments(t *testing.T) {
	vm := testVM(t, 1, nil)
	src := `| args |
		args := Array new: 2.
		args at: 1 put: 30.
		args at: 2 put: 12.
		40 perform: #blah ifAbsent: nil`
	_ = src
	if got := evalInt(t, vm, "| args | args := Array new: 1. args at: 1 put: 5. 37 perform: #+ withArguments: args"); got != 42 {
		t.Errorf("perform:withArguments: = %d", got)
	}
}

func TestContextStackOverflowIsAnError(t *testing.T) {
	vm := testVM(t, 1, func(cfg *Config, hcfg *heap.Config) {
		cfg.PanicOnVMError = false
	})
	p := vm.Interps[0].p
	cls := vm.CreateClass(p, "Deep2", vm.Specials.Object, nil, KindFixed, "Tests")
	if _, err := vm.CompileAndInstall(p, cls, "down ^self down", "tests"); err != nil {
		t.Fatal(err)
	}
	// Infinite recursion: contexts pile up until old space fills; the
	// OOM panic is caught and the evaluation fails cleanly.
	if _, err := vm.Evaluate("Deep2 new down"); err == nil {
		t.Fatal("infinite recursion succeeded?!")
	}
}

// TestStaleMethodCacheOnInstall is the regression test for method
// installation racing warm caches: an evaluation warms a send site and
// the per-processor (or shared) method cache, then — mid-run, through
// the compile primitive — installs a replacement method. flushAllCaches
// must invalidate every cache level on every interpreter so the very
// next send binds the new method.
func TestStaleMethodCacheOnInstall(t *testing.T) {
	for _, mode := range []struct {
		name  string
		cache CachePolicy
	}{
		{"replicated", CacheReplicated},
		{"shared-locked", CacheSharedLocked},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			vm := testVM(t, 3, func(cfg *Config, hcfg *heap.Config) {
				cfg.MethodCache = mode.cache
			})
			p := vm.Interps[0].p
			cls := vm.CreateClass(p, "Hot", vm.Specials.Object, nil, KindFixed, "Tests")
			mustInstall := func(c object.OOP, src string) {
				t.Helper()
				if _, err := vm.CompileAndInstall(p, c, src, "tests"); err != nil {
					t.Fatal(err)
				}
			}
			mustInstall(cls, "answer ^1")
			mustInstall(vm.H.ClassOf(cls),
				"compile: src classified: cat <primitive: 85> ^self error: 'compile failed'")
			// Other interpreters are running (idle loop) while this one
			// warms the caches and swaps the method underneath itself.
			src := `| h warm r |
				h := Hot new.
				warm := 0.
				1 to: 10 do: [:i | warm := warm + h answer].
				Hot compile: 'answer ^100' classified: 'gen'.
				r := h answer.
				warm + r`
			if got := evalInt(t, vm, src); got != 10+100 {
				t.Errorf("%s: warm+fresh = %d, want 110 (stale cache entry survived install)", mode.name, got)
			}
			// A second install while the new method is itself warm.
			if got := evalInt(t, vm, "Hot compile: 'answer ^7' classified: 'gen'. Hot new answer"); got != 7 {
				t.Errorf("%s: second install = %d, want 7", mode.name, got)
			}
		})
	}
}

// TestDoesNotUnderstandThroughSharedCache exercises the DNU path when
// every interpreter shares one locked method cache: the failed lookup
// (and the fallback send of #doesNotUnderstand:) go through the shared
// cache under its lock.
func TestDoesNotUnderstandThroughSharedCache(t *testing.T) {
	vm := testVM(t, 2, func(cfg *Config, hcfg *heap.Config) {
		cfg.MethodCache = CacheSharedLocked
	})
	p := vm.Interps[0].p
	cls := vm.CreateClass(p, "Echo2", vm.Specials.Object, nil, KindFixed, "Tests")
	if _, err := vm.CompileAndInstall(p, cls,
		"doesNotUnderstand: aMessage ^(aMessage instVarAt: 2) size", "tests"); err != nil {
		t.Fatal(err)
	}
	if got := evalInt(t, vm, "Echo2 new mystery: 1 with: 2"); got != 2 {
		t.Errorf("DNU through shared cache = %d, want 2", got)
	}
	if vm.Stats().DNUs == 0 {
		t.Error("no DNU counted")
	}
	// And the error path: an unhandled DNU still fails the evaluation.
	if _, err := vm.Evaluate("3 frobnicate"); err == nil {
		t.Error("unhandled DNU succeeded")
	}
}

// TestParallelLookupSharedCache has workers on distinct processors
// hammer method lookup of disjoint selectors through one shared locked
// method cache — the configuration the paper measured as "much too
// slow" but which must stay correct. Run under -race this also checks
// the host-side locking of the shared cache array.
func TestParallelLookupSharedCache(t *testing.T) {
	vm := testVM(t, 4, func(cfg *Config, hcfg *heap.Config) {
		cfg.MethodCache = CacheSharedLocked
	})
	p := vm.Interps[0].p
	for i, src := range []string{
		"alpha: n | s | s := 0. 1 to: n do: [:i | s := s + i]. ^s",
		"beta: n | s | s := 1. 1 to: n do: [:i | s := s + 2]. ^s",
		"gamma: n ^n * 3",
	} {
		cls := vm.CreateClass(p, fmt.Sprintf("Par%d", i), vm.Specials.Object, nil, KindFixed, "Tests")
		if _, err := vm.CompileAndInstall(p, cls, src, "tests"); err != nil {
			t.Fatal(err)
		}
	}
	src := `| sem results |
		sem := Semaphore new.
		results := Array new: 3.
		[| s | s := 0. 1 to: 30 do: [:i | s := Par0 new alpha: 100].
		 results at: 1 put: s. sem signal] fork.
		[| s | s := 0. 1 to: 30 do: [:i | s := Par1 new beta: 100].
		 results at: 2 put: s. sem signal] fork.
		[| s | s := 0. 1 to: 30 do: [:i | s := Par2 new gamma: 100].
		 results at: 3 put: s. sem signal] fork.
		sem wait. sem wait. sem wait.
		(results at: 1) + (results at: 2) + (results at: 3)`
	if got := evalInt(t, vm, src); got != 5050+201+300 {
		t.Errorf("parallel shared-cache lookups = %d, want %d", got, 5050+201+300)
	}
	if vm.Stats().CacheHits == 0 {
		t.Error("shared cache never hit")
	}
}
