package interp

import (
	"fmt"

	"mst/internal/firefly"
	"mst/internal/heap"
	"mst/internal/jit"
	"mst/internal/object"
)

// VMTables is the serializable VM-level state accompanying a heap
// snapshot: the well-known objects and the native tables whose entries
// are heap oops.
type VMTables struct {
	Specials         Specials
	SymbolList       []object.OOP
	CharTable        []object.OOP
	SpecialSelectors []object.OOP
}

// SnapshotTables captures the VM tables for serialization.
func (vm *VM) SnapshotTables() *VMTables {
	return &VMTables{
		Specials:         vm.Specials,
		SymbolList:       append([]object.OOP(nil), vm.symbolList...),
		CharTable:        append([]object.OOP(nil), vm.charTable...),
		SpecialSelectors: append([]object.OOP(nil), vm.specialSelectors...),
	}
}

// RestoreVM builds a VM over a restored heap, reinstating the tables
// instead of running Genesis. The symbol index is rebuilt from the
// symbols' own bytes. Interpreters start idle; any Processes on the
// image's ready queue resume when the machine runs.
func RestoreVM(m *firefly.Machine, h *heap.Heap, cfg Config, t *VMTables) (*VM, error) {
	vm := New(m, h, cfg)
	vm.Specials = t.Specials
	vm.symbolList = append([]object.OOP(nil), t.SymbolList...)
	vm.charTable = append([]object.OOP(nil), t.CharTable...)
	vm.specialSelectors = append([]object.OOP(nil), t.SpecialSelectors...)
	for i, sym := range vm.symbolList {
		if !sym.IsPtr() || sym == object.Nil {
			return nil, fmt.Errorf("interp: snapshot symbol %d is not an object", i)
		}
		vm.symbolIdx[vm.SymbolName(sym)] = i
	}
	// The paper empties the activeProcess slot after a snapshot; a
	// loaded MS image ignores it, but keep the invariant anyway.
	h.StoreNoCheck(vm.Specials.Scheduler, SchedActive, object.Nil)
	vm.StartInterpreters()
	return vm, nil
}

// ParkAllProcesses flushes every interpreter's running Process into the
// heap (registers into its suspended context, state back to Ready on
// the shared ready queue — MS keeps running Processes queued, so no
// relinking is needed). Interpreters notice their Process is no longer
// Running at the next quantum boundary and reschedule, so execution
// continues seamlessly in the running image while the flushed state is
// what a snapshot sees.
func (vm *VM) ParkAllProcesses(p *firefly.Proc) {
	for _, in := range vm.Interps {
		if in.proc == object.Nil {
			continue
		}
		in.flushRegisters()
		vm.H.Store(p, in.proc, PrSuspendedContext, in.ctx)
		vm.H.StoreNoCheck(in.proc, PrState, object.FromInt(StateReady))
	}
}

// SnapshotFunc is installed by the image layer to write a snapshot; the
// snapshot primitive calls it.
type SnapshotFunc func(vm *VM, path string) error

// SetSnapshotFunc installs the snapshot writer used by primitive 139.
func (vm *VM) SetSnapshotFunc(f SnapshotFunc) { vm.snapshotFunc = f }

// primSnapshot implements `Smalltalk snapshotTo: 'path'` (primitive
// 139), following the paper's protocol: the result is pushed first (so
// both the continuing image and the resumed image see it), every
// Process is parked, the scheduler's activeProcess slot is filled with
// the snapshotting Process, the image is written, and the slot is
// emptied again.
func (in *Interp) primSnapshot(nargs int, recv object.OOP) bool {
	vm := in.vm
	pathO := in.stackAt(0)
	if vm.snapshotFunc == nil || !in.isStringy(pathO) {
		return false
	}
	path := vm.GoString(pathO)
	in.primReturn(nargs, recv)

	vm.ParkAllProcesses(in.p)
	vm.jitDeoptAll(jit.DeoptSnapshot)
	// "The only requirement is to fill in the activeProcess slot
	// before taking a snapshot and to empty it afterwards." (§3.3)
	vm.H.Store(in.p, vm.Specials.Scheduler, SchedActive, in.proc)
	err := vm.snapshotFunc(vm, path)
	vm.H.StoreNoCheck(vm.Specials.Scheduler, SchedActive, object.Nil)
	if err != nil {
		vm.hostMu.Lock()
		vm.errors = append(vm.errors, "snapshot: "+err.Error())
		vm.hostMu.Unlock()
		// The result is already pushed; report the failure via the
		// transcript rather than unwinding the stack.
		vm.Disp.TranscriptShow(in.p, "snapshot failed: "+err.Error()+"\n")
		return true
	}
	// Continue running: our own Process was parked; resume it.
	vm.H.StoreNoCheck(in.proc, PrState, object.FromInt(StateRunning))
	return true
}
