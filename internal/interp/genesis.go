package interp

import (
	"mst/internal/bytecode"
	"mst/internal/object"
)

// classSpec declares one kernel class created at genesis.
type classSpec struct {
	slot     *object.OOP
	name     string
	super    *object.OOP // nil for Object
	instVars []string
	kind     ClassKind
}

// Genesis creates the kernel object model: the class hierarchy with full
// metaclasses, the system dictionary, the character table, the
// ProcessorScheduler with its single ready queue, and the input
// semaphore. Everything is allocated in old space (immortal for the
// session), so genesis cannot trigger a scavenge.
func (vm *VM) Genesis() {
	s := &vm.Specials

	specs := []classSpec{
		{&s.Object, "Object", nil, nil, KindFixed},
		{&s.Behavior, "Behavior", &s.Object,
			[]string{"superclass", "methodDict", "format", "name", "instVarNames",
				"organization", "subclasses", "category", "comment", "thisClass"},
			KindFixed},
		{&s.Class, "Class", &s.Behavior, nil, KindFixed},
		{&s.Metaclass, "Metaclass", &s.Behavior, nil, KindFixed},
		{&s.UndefinedObject, "UndefinedObject", &s.Object, nil, KindFixed},
		{&s.Boolean, "Boolean", &s.Object, nil, KindFixed},
		{&s.TrueCls, "True", &s.Boolean, nil, KindFixed},
		{&s.FalseCls, "False", &s.Boolean, nil, KindFixed},
		{&s.Magnitude, "Magnitude", &s.Object, nil, KindFixed},
		{&s.Character, "Character", &s.Magnitude, []string{"value"}, KindFixed},
		{&s.Number, "Number", &s.Magnitude, nil, KindFixed},
		{&s.SmallInteger, "SmallInteger", &s.Number, nil, KindFixed},
		{&s.Float, "Float", &s.Number, nil, KindIdxWords},
		{&s.Collection, "Collection", &s.Object, nil, KindFixed},
		{&s.SequenceableCollection, "SequenceableCollection", &s.Collection, nil, KindFixed},
		{&s.ArrayedCollection, "ArrayedCollection", &s.SequenceableCollection, nil, KindFixed},
		{&s.Array, "Array", &s.ArrayedCollection, nil, KindIdxPointers},
		{&s.ByteArray, "ByteArray", &s.ArrayedCollection, nil, KindIdxBytes},
		{&s.String, "String", &s.ArrayedCollection, nil, KindIdxChars},
		{&s.Symbol, "Symbol", &s.String, nil, KindIdxChars},
		{&s.Association, "Association", &s.Object, []string{"key", "value"}, KindFixed},
		{&s.Dictionary, "Dictionary", &s.Collection, []string{"tally", "array"}, KindFixed},
		{&s.SystemDictionary, "SystemDictionary", &s.Dictionary, nil, KindFixed},
		{&s.MethodDictionary, "MethodDictionary", &s.Collection,
			[]string{"tally", "keys", "values"}, KindFixed},
		{&s.CompiledMethod, "CompiledMethod", &s.Object,
			[]string{"header", "literals", "bytecodes", "selector", "methodClass",
				"category", "source"},
			KindFixed},
		{&s.MethodContext, "MethodContext", &s.Object,
			[]string{"sender", "pc", "stackp", "method", "receiver"}, KindIdxPointers},
		{&s.BlockContext, "BlockContext", &s.Object,
			[]string{"caller", "pc", "stackp", "home", "info", "initialPC"}, KindIdxPointers},
		{&s.LinkedList, "LinkedList", &s.SequenceableCollection,
			[]string{"firstLink", "lastLink"}, KindFixed},
		{&s.Semaphore, "Semaphore", &s.LinkedList, []string{"excessSignals"}, KindFixed},
		{&s.Process, "Process", &s.Object,
			[]string{"suspendedContext", "priority", "myList", "nextLink", "state", "name"},
			KindFixed},
		{&s.ProcessorScheduler, "ProcessorScheduler", &s.Object,
			[]string{"quiescentProcessLists", "activeProcess"}, KindFixed},
		{&s.Message, "Message", &s.Object, []string{"selector", "arguments"}, KindFixed},
		{&s.Delay, "Delay", &s.Object, []string{"duration"}, KindFixed},
	}

	// Pass 1: allocate bare class objects so every Specials slot is
	// valid before anything (symbols!) is created.
	for _, sp := range specs {
		*sp.slot = vm.H.AllocateNoGC(object.Invalid, ClassInstSize, object.FmtPointers)
	}

	// The system dictionary exists before class registration.
	s.SmalltalkDict = vm.H.AllocateNoGC(s.SystemDictionary, SysDictInstSize, object.FmtPointers)
	arr := vm.H.AllocateNoGC(s.Array, 512, object.FmtPointers)
	vm.H.StoreNoCheck(s.SmalltalkDict, SDTally, object.FromInt(0))
	vm.H.StoreNoCheck(s.SmalltalkDict, SDArray, arr)

	// Pass 2: wire superclasses, formats, names, metaclasses.
	instSizes := map[*object.OOP]int{}
	metas := map[*object.OOP]object.OOP{}
	for _, sp := range specs {
		cls := *sp.slot
		superOOP := object.Nil
		superSize := 0
		if sp.super != nil {
			superOOP = *sp.super
			superSize = instSizes[sp.super]
		}
		instSize := superSize + len(sp.instVars)
		instSizes[sp.slot] = instSize

		vm.H.StoreNoCheck(cls, ClsSuperclass, superOOP)
		vm.H.StoreNoCheck(cls, ClsMethodDict, vm.newMethodDictNoGC())
		vm.H.StoreNoCheck(cls, ClsFormat, EncodeFormat(instSize, sp.kind))
		vm.H.StoreNoCheck(cls, ClsName, vm.InternSymbol(nil, sp.name))
		ivn := vm.H.AllocateNoGC(s.Array, len(sp.instVars), object.FmtPointers)
		for i, n := range sp.instVars {
			vm.H.StoreNoCheck(ivn, i, vm.allocString(nil, s.String, n))
		}
		vm.H.StoreNoCheck(cls, ClsInstVarNames, ivn)
		vm.H.StoreNoCheck(cls, ClsOrganization, vm.allocString(nil, s.String, ""))
		vm.H.StoreNoCheck(cls, ClsCategory, vm.allocString(nil, s.String, "Kernel"))
		vm.H.StoreNoCheck(cls, ClsComment, vm.allocString(nil, s.String, ""))
		vm.H.StoreNoCheck(cls, ClsThisClass, object.Nil)

		// Metaclass: an instance of Metaclass describing cls.
		meta := vm.H.AllocateNoGC(s.Metaclass, ClassInstSize, object.FmtPointers)
		metas[sp.slot] = meta
		vm.H.SetClass(nil, cls, meta)
		vm.H.StoreNoCheck(meta, ClsMethodDict, vm.newMethodDictNoGC())
		vm.H.StoreNoCheck(meta, ClsFormat, EncodeFormat(ClassInstSize, KindFixed))
		vm.H.StoreNoCheck(meta, ClsName, vm.InternSymbol(nil, sp.name+" class"))
		vm.H.StoreNoCheck(meta, ClsInstVarNames, vm.H.AllocateNoGC(s.Array, 0, object.FmtPointers))
		vm.H.StoreNoCheck(meta, ClsOrganization, vm.allocString(nil, s.String, ""))
		vm.H.StoreNoCheck(meta, ClsCategory, vm.allocString(nil, s.String, "Kernel"))
		vm.H.StoreNoCheck(meta, ClsComment, vm.allocString(nil, s.String, ""))
		vm.H.StoreNoCheck(meta, ClsThisClass, cls)
		vm.H.StoreNoCheck(meta, ClsSubclasses, vm.H.AllocateNoGC(s.Array, 0, object.FmtPointers))

		// Register the class as a global.
		vm.SysDictDefine(nil, sp.name, cls)
	}

	// Metaclass superclass chain: Foo class -> Super class; Object
	// class -> Class. Every metaclass is an instance of Metaclass.
	// (sp.super is the same Specials-slot pointer the superclass spec
	// used, so it keys the metas map directly.)
	for _, sp := range specs {
		meta := metas[sp.slot]
		if sp.super == nil {
			vm.H.StoreNoCheck(meta, ClsSuperclass, s.Class)
		} else {
			vm.H.StoreNoCheck(meta, ClsSuperclass, metas[sp.super])
		}
	}

	// Subclass arrays.
	children := map[*object.OOP][]object.OOP{}
	for _, sp := range specs {
		if sp.super != nil {
			children[sp.super] = append(children[sp.super], *sp.slot)
		}
	}
	for _, sp := range specs {
		kids := children[sp.slot]
		a := vm.H.AllocateNoGC(s.Array, len(kids), object.FmtPointers)
		for i, k := range kids {
			vm.H.StoreNoCheck(a, i, k)
		}
		vm.H.StoreNoCheck(*sp.slot, ClsSubclasses, a)
	}

	// Patch the immortal objects' classes.
	vm.H.SetClass(nil, object.Nil, s.UndefinedObject)
	vm.H.SetClass(nil, object.True, s.TrueCls)
	vm.H.SetClass(nil, object.False, s.FalseCls)

	// Character table.
	vm.charTable = make([]object.OOP, 256)
	for i := range vm.charTable {
		c := vm.H.AllocateNoGC(s.Character, CharInstSize, object.FmtPointers)
		vm.H.StoreNoCheck(c, CharValue, object.FromInt(int64(i)))
		vm.charTable[i] = c
	}

	// The ProcessorScheduler with its single ready queue (one
	// LinkedList per priority), and the input semaphore.
	sched := vm.H.AllocateNoGC(s.ProcessorScheduler, SchedInstSize, object.FmtPointers)
	lists := vm.H.AllocateNoGC(s.Array, NumPriorities, object.FmtPointers)
	for i := 0; i < NumPriorities; i++ {
		vm.H.StoreNoCheck(lists, i, vm.H.AllocateNoGC(s.LinkedList, LinkedListInstSize, object.FmtPointers))
	}
	vm.H.StoreNoCheck(sched, SchedLists, lists)
	s.Scheduler = sched
	vm.SysDictDefine(nil, "Processor", sched)
	vm.SysDictDefine(nil, "Smalltalk", s.SmalltalkDict)

	s.InputSem = vm.H.AllocateNoGC(s.Semaphore, SemInstSize, object.FmtPointers)
	vm.H.StoreNoCheck(s.InputSem, SemExcess, object.FromInt(0))
	vm.SysDictDefine(nil, "InputSemaphore", s.InputSem)

	// Selector symbols the VM itself sends.
	s.SymDNU = vm.InternSymbol(nil, "doesNotUnderstand:")
	s.SymMustBeBool = vm.InternSymbol(nil, "mustBeBoolean")
	s.SymCannotReturn = vm.InternSymbol(nil, "cannotReturn:")
	s.SymDoIt = vm.InternSymbol(nil, "DoIt")

	// Pre-intern the special-send selectors so the interpreter's
	// fallback path never allocates during dispatch.
	vm.specialSelectors = make([]object.OOP, len(bytecode.SpecialSends))
	for i, sp := range bytecode.SpecialSends {
		vm.specialSelectors[i] = vm.InternSymbol(nil, sp.Selector)
	}
}

// newMethodDictNoGC allocates an empty method dictionary in old space.
func (vm *VM) newMethodDictNoGC() object.OOP {
	const capacity = 8
	d := vm.H.AllocateNoGC(vm.Specials.MethodDictionary, MethodDictInstSize, object.FmtPointers)
	vm.H.StoreNoCheck(d, MDTally, object.FromInt(0))
	vm.H.StoreNoCheck(d, MDKeys, vm.H.AllocateNoGC(vm.Specials.Array, capacity, object.FmtPointers))
	vm.H.StoreNoCheck(d, MDValues, vm.H.AllocateNoGC(vm.Specials.Array, capacity, object.FmtPointers))
	return d
}
