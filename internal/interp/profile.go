package interp

import (
	"mst/internal/object"
	"mst/internal/trace"
)

// Selector-level profiler plumbing. The interpreter's loadContext is the
// single chokepoint where the executing method changes (sends, returns,
// block activations, process switches all pass through it), so profSync
// runs there: it walks the live context chain host-side, renders each
// frame as a qualified "Class>>selector" name, and hands the stack to
// the trace.Profiler with the processor's busy-tick clock.
//
// Everything here observes without perturbing: the walk reads the heap
// (Fetch/Bytes only, no mutation, no IdentityHash — that would assign
// hash bits lazily), holds no oops across operations that could GC, and
// charges no virtual time. Name caches are keyed by oop and flushed
// before every scavenge because objects move.

// ensureNameCaches creates the oop-keyed name caches and registers
// their pre-scavenge flush exactly once; both the selector profiler and
// the allocation-site profiler render through them.
func (vm *VM) ensureNameCaches() {
	if vm.methodNames != nil {
		return
	}
	vm.methodNames = map[object.OOP]string{}
	vm.selectorNames = map[object.OOP]string{}
	vm.H.OnPreScavenge(func() {
		clear(vm.methodNames)
		clear(vm.selectorNames)
	})
}

// EnableProfiler attaches a selector profiler to the VM. Call after boot
// so image-build time is not charged; the per-processor busy baselines
// are primed from the current clocks.
func (vm *VM) EnableProfiler() {
	if vm.prof != nil {
		return
	}
	vm.prof = trace.NewProfiler(vm.M.NumProcs())
	vm.ensureNameCaches()
	for i, in := range vm.Interps {
		vm.prof.Prime(i, int64(in.p.Stats().Busy))
		in.profSync()
	}
}

// EnableAllocProfiler attaches an allocation-site profiler: every heap
// allocation from here on is attributed to the executing
// Class>>selector, and the scavenger follows each site's objects to
// derive survivor and tenure rates. Call after boot so image-build
// allocation is not attributed. Deterministic mode only (the core
// config layer validates): the site lookup reads the per-processor
// interpreter state mid-bytecode.
func (vm *VM) EnableAllocProfiler() *trace.AllocProfiler {
	if vm.allocProf != nil {
		return vm.allocProf
	}
	vm.ensureNameCaches()
	vm.allocProf = trace.NewAllocProfiler()
	vm.allocSiteIDs = map[object.OOP]int{}
	vm.H.OnPreScavenge(func() { clear(vm.allocSiteIDs) })
	vm.H.SetAllocProfiler(vm.allocProf, vm.allocSiteFor)
	return vm.allocProf
}

// AllocProfiler returns the attached allocation-site profiler, or nil.
func (vm *VM) AllocProfiler() *trace.AllocProfiler { return vm.allocProf }

// allocSiteFor resolves processor proc's current allocation site: the
// compiled method its interpreter is executing, interned by method oop
// (the id cache is flushed before every scavenge because oops move).
// Allocations with no executing method — evaluation setup, primitive
// scaffolding — fall to the "(vm)" site.
func (vm *VM) allocSiteFor(proc int) int {
	var method object.OOP
	if proc >= 0 && proc < len(vm.Interps) {
		method = vm.Interps[proc].method
	}
	if !method.IsPtr() || method == object.Nil {
		return vm.allocProf.SiteID("(vm)")
	}
	if id, ok := vm.allocSiteIDs[method]; ok {
		return id
	}
	id := vm.allocProf.SiteID(vm.methodName(method))
	vm.allocSiteIDs[method] = id
	return id
}

// Profiler returns the attached profiler, or nil.
func (vm *VM) Profiler() *trace.Profiler { return vm.prof }

// ProfilerFlush finalizes attribution at the processors' current busy
// clocks; call when the machine is parked, before reading the report.
func (vm *VM) ProfilerFlush() {
	if vm.prof == nil {
		return
	}
	busy := make([]int64, len(vm.Interps))
	for i, in := range vm.Interps {
		busy[i] = int64(in.p.Stats().Busy)
	}
	vm.prof.Flush(busy)
}

// selName returns the Go string of a selector symbol, cached by oop.
func (in *Interp) selName(sel object.OOP) string {
	vm := in.vm
	if vm.selectorNames == nil {
		return vm.SymbolName(sel)
	}
	if name, ok := vm.selectorNames[sel]; ok {
		return name
	}
	name := vm.SymbolName(sel)
	vm.selectorNames[sel] = name
	return name
}

// methodName renders a compiled method as "Class>>selector", cached by
// method oop.
func (vm *VM) methodName(method object.OOP) string {
	if name, ok := vm.methodNames[method]; ok {
		return name
	}
	h := vm.H
	name := "(unknown)"
	if method.IsPtr() && method != object.Nil {
		sel := h.Fetch(method, CMSelector)
		cls := h.Fetch(method, CMMethodClass)
		selName := "?"
		if sel != object.Nil && h.Header(sel).Format() == object.FmtBytes {
			selName = string(h.Bytes(sel))
		}
		clsName := "?"
		if cls != object.Nil && cls.IsPtr() {
			if cn := h.Fetch(cls, ClsName); cn != object.Nil && h.Header(cn).Format() == object.FmtBytes {
				clsName = string(h.Bytes(cn))
			}
		}
		name = clsName + ">>" + selName
	}
	vm.methodNames[method] = name
	return name
}

// profSync captures the current call chain and syncs the profiler.
// Frames are collected innermost-first by walking sender/caller links,
// then reversed to the outermost-first order Profiler.Sync expects.
func (in *Interp) profSync() {
	vm := in.vm
	h := vm.H
	frames := in.profFrames[:0]
	for ctx := in.ctx; ctx != object.Nil && ctx.IsPtr(); {
		if h.ClassOf(ctx) == vm.Specials.BlockContext {
			home := h.Fetch(ctx, BCtxHome)
			name := "[] in (unknown)"
			if home != object.Nil && home.IsPtr() {
				name = "[] in " + vm.methodName(h.Fetch(home, CtxMethod))
			}
			frames = append(frames, name)
			ctx = h.Fetch(ctx, BCtxCaller)
		} else {
			frames = append(frames, vm.methodName(h.Fetch(ctx, CtxMethod)))
			ctx = h.Fetch(ctx, CtxSender)
		}
	}
	for i, j := 0, len(frames)-1; i < j; i, j = i+1, j-1 {
		frames[i], frames[j] = frames[j], frames[i]
	}
	if in.jfns != nil && len(frames) > 0 {
		// Tier attribution: busy ticks accrued while the innermost
		// frame runs as compiled closures are tagged so the selector
		// profiler can split compiled vs interpreted time.
		frames[len(frames)-1] += jitFrameTag
	}
	in.profFrames = frames
	vm.prof.Sync(in.p.ID(), frames, int64(in.p.Stats().Busy))
}

// profIdle marks the processor idle (empty stack) in the profiler; the
// idle loop's own polling work accrues to the (idle) bucket.
func (in *Interp) profIdle() {
	in.vm.prof.Sync(in.p.ID(), nil, int64(in.p.Stats().Busy))
}
