// Package interp implements the Multiprocessor Smalltalk virtual
// machine: the replicated bytecode interpreter, method lookup with
// per-processor (or serialized shared) method caches, heap-allocated
// contexts recycled through per-processor (or serialized global) free
// lists, the Smalltalk Process/Semaphore scheduler with its single
// shared ready queue, and the primitive set.
//
// The package applies the paper's three strategies exactly where MS did
// (Table 3): serialization for allocation, garbage collection, entry
// tables, scheduling, and I/O; replication for the interpretation
// process, the method caches, and the free context lists; and
// reorganization for the scheduler's activeProcess (replaced by the
// thisProcess and canRun: primitives; running Processes stay on the
// ready queue).
package interp

import (
	"fmt"
	"math"
	"sync"

	"mst/internal/display"
	"mst/internal/firefly"
	"mst/internal/heap"
	"mst/internal/object"
	"mst/internal/sanitize"
	"mst/internal/trace"
)

// CachePolicy selects the method-lookup cache organization.
type CachePolicy int

const (
	// CacheReplicated is MS's final design: one cache per processor.
	CacheReplicated CachePolicy = iota
	// CacheSharedLocked is MS's first attempt: a single cache behind a
	// lock, which "was causing it to run much too slowly".
	CacheSharedLocked
)

func (c CachePolicy) String() string {
	if c == CacheSharedLocked {
		return "shared-locked"
	}
	return "replicated"
}

// ICPolicy selects the per-send-site inline-cache organization — the
// Deutsch–Schiffman lineage the paper's successors adopted. It is an
// extension beyond the paper: the default (paper-faithful) configuration
// keeps it off, so Table 2 / Figure 2 numbers are unchanged.
type ICPolicy int

const (
	// ICOff disables inline caches: every send goes straight to the
	// per-processor (or shared) method cache. The paper's design.
	ICOff ICPolicy = iota
	// ICMono gives each send site one monomorphic entry (a classic
	// Deutsch–Schiffman inline cache): a class mismatch rebinds it.
	ICMono
	// ICPoly upgrades a site to a small polymorphic cache (up to
	// icWays class→method entries) on class mismatch, Hölzle-style.
	ICPoly
)

func (p ICPolicy) String() string {
	switch p {
	case ICMono:
		return "monomorphic"
	case ICPoly:
		return "polymorphic"
	}
	return "off"
}

// FreeCtxPolicy selects the free-context-list organization.
type FreeCtxPolicy int

const (
	// FreeCtxPerProcessor is MS's final design (worst-case overhead 65%).
	FreeCtxPerProcessor FreeCtxPolicy = iota
	// FreeCtxSharedLocked is the serialized design that profiling showed
	// to be a bottleneck (worst-case overhead 160%).
	FreeCtxSharedLocked
)

func (c FreeCtxPolicy) String() string {
	if c == FreeCtxSharedLocked {
		return "shared-locked"
	}
	return "per-processor"
}

// Config configures the virtual machine.
type Config struct {
	// MSMode enables the multiprocessor support (virtual locks, cache
	// replication overhead). False models baseline BS: the identical
	// interpreter with all multiprocessor support compiled out.
	MSMode bool
	// MethodCache selects the cache strategy (paper §3.2).
	MethodCache CachePolicy
	// CacheWays selects the method cache's set associativity: 1 (the
	// paper's direct-mapped cache, the default — 0 normalizes to 1) or
	// 2 (an extension: a second probe of the adjacent entry converts
	// many conflict misses into hits).
	CacheWays int
	// InlineCache selects the per-send-site inline-cache policy (an
	// extension; off by default for paper fidelity).
	InlineCache ICPolicy
	// FreeContexts selects the free-list strategy (paper §3.2).
	FreeContexts FreeCtxPolicy
	// QuantumBytecodes bounds one interpreter quantum.
	QuantumBytecodes int
	// JIT enables the template-compiled execution tier (msjit, an
	// extension; off by default): hot methods are compiled into arrays
	// of pre-specialized closures that charge the identical virtual
	// costs through the same cost table, so every virtual time and
	// counter is bit-identical — only host time changes.
	JIT bool
	// PanicOnVMError makes internal VM errors panic (tests); otherwise
	// they are recorded and the offending Process is terminated.
	PanicOnVMError bool
	// Parallel prepares the VM for parallel host mode (the machine's
	// SetParallel): per-interpreter statistics are read locally by the
	// stat primitive, symbol interning allocates outside the intern
	// mutex, and idle interpreters yield the OS thread.
	Parallel bool
}

// DefaultConfig returns the MS production configuration.
func DefaultConfig() Config {
	return Config{
		MSMode:           true,
		MethodCache:      CacheReplicated,
		FreeContexts:     FreeCtxPerProcessor,
		QuantumBytecodes: 400,
		PanicOnVMError:   true,
	}
}

// Field layouts of the kernel objects. Classes are ordinary objects, so
// Smalltalk code browses them with the same accessors the VM uses.
const (
	ClsSuperclass   = 0
	ClsMethodDict   = 1
	ClsFormat       = 2 // SmallInteger: instSize<<3 | kind
	ClsName         = 3
	ClsInstVarNames = 4
	ClsOrganization = 5
	ClsSubclasses   = 6
	ClsCategory     = 7
	ClsComment      = 8
	ClsThisClass    = 9 // metaclasses: the class described
	ClassInstSize   = 10

	MDTally            = 0
	MDKeys             = 1
	MDValues           = 2
	MethodDictInstSize = 3

	CMHeader       = 0
	CMLiterals     = 1
	CMBytes        = 2
	CMSelector     = 3
	CMMethodClass  = 4
	CMCategory     = 5
	CMSource       = 6
	MethodInstSize = 7

	CtxSender   = 0
	CtxPC       = 1
	CtxSP       = 2
	CtxMethod   = 3
	CtxReceiver = 4
	CtxFixed    = 5

	BCtxCaller    = 0
	BCtxPC        = 1
	BCtxSP        = 2
	BCtxHome      = 3
	BCtxInfo      = 4 // SmallInteger: nargs | firstArgTemp<<8
	BCtxInitialPC = 5
	BCtxFixed     = 6

	PrSuspendedContext = 0
	PrPriority         = 1
	PrMyList           = 2
	PrNextLink         = 3
	PrState            = 4
	PrName             = 5
	ProcessInstSize    = 6

	LLFirst            = 0
	LLLast             = 1
	LinkedListInstSize = 2

	SemFirst    = 0
	SemLast     = 1
	SemExcess   = 2
	SemInstSize = 3

	SchedLists    = 0
	SchedActive   = 1
	SchedInstSize = 2

	AsKey               = 0
	AsValue             = 1
	AssociationInstSize = 2

	SDTally         = 0
	SDArray         = 1
	SysDictInstSize = 2

	MsgSelector     = 0
	MsgArgs         = 1
	MessageInstSize = 2

	CharValue    = 0
	CharInstSize = 1
)

// Context sizing: contexts come in two sizes, like Smalltalk-80's small
// and large contexts, and are recycled through free lists.
const (
	SmallCtxSlots = 16
	LargeCtxSlots = 56
	BlockCtxSlots = 24
)

// Process states.
const (
	StateSuspended  = 0
	StateReady      = 1
	StateRunning    = 2
	StateBlocked    = 3
	StateTerminated = 4
)

// NumPriorities is the number of scheduler priority levels (1..8).
const NumPriorities = 8

// UserPriority is the priority DoIt processes run at.
const UserPriority = 5

// ClassKind describes instance storage layout.
type ClassKind int

const (
	KindFixed       ClassKind = 0 // named fields only
	KindIdxPointers ClassKind = 1 // named fields + indexable pointers
	KindIdxBytes    ClassKind = 2 // indexable raw bytes
	KindIdxChars    ClassKind = 3 // indexable bytes presented as Characters
	KindIdxWords    ClassKind = 4 // indexable raw 64-bit words
)

// EncodeFormat packs a class format SmallInteger.
func EncodeFormat(instSize int, kind ClassKind) object.OOP {
	return object.FromInt(int64(instSize)<<3 | int64(kind))
}

// DecodeFormat unpacks a class format SmallInteger.
func DecodeFormat(f object.OOP) (instSize int, kind ClassKind) {
	v := f.Int()
	return int(v >> 3), ClassKind(v & 7)
}

// Method header packing (a SmallInteger in CMHeader). Send-site counts
// above the 12-bit field saturate to the maximum; the inline-cache layer
// trusts its own bytecode scan for the true site list and uses the
// header count only as an allocation hint and a zero-site fast path
// (a saturated count is still nonzero, so such methods stay cached).
func encodeMethodHeader(nargs, ntemps, maxStack, prim int, clean bool, sendSites int) object.OOP {
	if sendSites > 0xFFF {
		sendSites = 0xFFF
	}
	v := int64(nargs) | int64(ntemps)<<8 | int64(maxStack)<<20 | int64(prim)<<32
	if clean {
		v |= 1 << 44
	}
	v |= int64(sendSites) << 45
	return object.FromInt(v)
}

func headerNumArgs(h object.OOP) int   { return int(h.Int() & 0xFF) }
func headerNumTemps(h object.OOP) int  { return int(h.Int() >> 8 & 0xFFF) }
func headerMaxStack(h object.OOP) int  { return int(h.Int() >> 20 & 0xFFF) }
func headerPrim(h object.OOP) int      { return int(h.Int() >> 32 & 0xFFF) }
func headerClean(h object.OOP) bool    { return h.Int()>>44&1 != 0 }
func headerSendSites(h object.OOP) int { return int(h.Int() >> 45 & 0xFFF) }

// Specials holds the well-known objects; every field is a GC root.
type Specials struct {
	// Core classes.
	Object, Behavior, Class, Metaclass          object.OOP
	UndefinedObject, Boolean, TrueCls, FalseCls object.OOP
	SmallInteger, Float, Character              object.OOP
	String, Symbol, Array, ByteArray            object.OOP
	Association, Dictionary, SystemDictionary   object.OOP
	MethodDictionary, CompiledMethod            object.OOP
	MethodContext, BlockContext                 object.OOP
	Process, Semaphore, LinkedList              object.OOP
	ProcessorScheduler, Message, Delay          object.OOP
	Magnitude, Number                           object.OOP
	Collection, SequenceableCollection          object.OOP
	ArrayedCollection                           object.OOP

	// Well-known instances.
	SmalltalkDict object.OOP // the SystemDictionary instance
	Scheduler     object.OOP // the ProcessorScheduler instance
	InputSem      object.OOP // semaphore signalled on input events

	// Selector symbols the VM sends itself.
	SymDNU          object.OOP // doesNotUnderstand:
	SymMustBeBool   object.OOP
	SymCannotReturn object.OOP
	SymDoIt         object.OOP
}

// Stats counts interpreter activity.
type Stats struct {
	Bytecodes        uint64
	Sends            uint64
	CacheHits        uint64
	CacheMisses      uint64
	ICHits           uint64 // inline-cache hits (per-send-site, extension)
	ICMisses         uint64 // inline-cache misses (cold, conflict, or class change)
	ICFills          uint64 // inline-cache entry (re)bindings
	ICPolySites      uint64 // sites upgraded monomorphic → polymorphic
	ICMegaSites      uint64 // polymorphic sites retired as megamorphic
	DictProbes       uint64
	DNUs             uint64
	Primitives       uint64
	PrimFailures     uint64
	ContextsAlloc    uint64
	ContextsRecycled uint64
	ProcessSwitches  uint64
	SemWaits         uint64
	SemSignals       uint64
	VMErrors         uint64
	JITCompiles      uint64 // methods template-compiled into the msjit tier
	JITDeopts        uint64 // mid-method bailouts back to the interpreter
	JITBytecodes     uint64 // bytecodes executed as compiled closures
}

// add accumulates o into s (used to sum the per-interpreter counters).
func (s *Stats) add(o *Stats) {
	s.Bytecodes += o.Bytecodes
	s.Sends += o.Sends
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.ICHits += o.ICHits
	s.ICMisses += o.ICMisses
	s.ICFills += o.ICFills
	s.ICPolySites += o.ICPolySites
	s.ICMegaSites += o.ICMegaSites
	s.DictProbes += o.DictProbes
	s.DNUs += o.DNUs
	s.Primitives += o.Primitives
	s.PrimFailures += o.PrimFailures
	s.ContextsAlloc += o.ContextsAlloc
	s.ContextsRecycled += o.ContextsRecycled
	s.ProcessSwitches += o.ProcessSwitches
	s.SemWaits += o.SemWaits
	s.SemSignals += o.SemSignals
	s.VMErrors += o.VMErrors
	s.JITCompiles += o.JITCompiles
	s.JITDeopts += o.JITDeopts
	s.JITBytecodes += o.JITBytecodes
}

// VM is the shared virtual machine state: one heap, one scheduler, one
// image, and one interpreter per virtual processor.
type VM struct {
	Cfg     Config
	M       *firefly.Machine
	H       *heap.Heap
	Disp    *display.Display
	Sensor  *display.Sensor
	Interps []*Interp

	Specials Specials

	schedLock *firefly.Spinlock
	cacheLock *firefly.RWSpinlock // CacheSharedLocked only (two-level: readers overlap)
	freeLock  *firefly.Spinlock   // FreeCtxSharedLocked only

	sharedCache   *[cacheSize]mcEntry // CacheSharedLocked only
	sharedFreeCtx [2][]object.OOP     // small/large shared free lists
	charTable     []object.OOP        // ASCII characters, roots

	// Symbol interning: slice is the root set, map caches name→index.
	symbolList []object.OOP
	symbolIdx  map[string]int

	// Pre-interned special-send selectors, indexed by op-FirstSpecialSend.
	specialSelectors []object.OOP

	// Input events transferred from the sensor, awaiting consumption
	// by the Sensor primitives (device-level data; no oops).
	inputQueue []display.Event

	// Delay queue: semaphores to signal at virtual times.
	delays []delayEntry

	// Evaluation rendezvous (one evaluation at a time).
	evalProc   object.OOP
	evalResult object.OOP
	evalDone   bool
	evalFailed string

	// pendingWork holds Go-side mutating operations (method installs,
	// evaluation setup) to be executed by interpreter 0 *inside* the
	// machine loop: heap mutation from the host main goroutine would
	// race the baton protocol when processors are parked mid-lock.
	pendingWork []func(p *firefly.Proc)
	dead        bool // an interpreter goroutine died (panic)

	// snapshotFunc writes an image snapshot (installed by the image
	// layer; used by primitive 139).
	snapshotFunc SnapshotFunc

	// Profiler state (see profile.go): prof is nil unless EnableProfiler
	// was called; the name caches map oops to rendered Go strings and
	// are flushed before every scavenge because oops move. allocProf
	// and its method-oop→site-id cache are the allocation-site
	// profiler's state, nil unless EnableAllocProfiler was called.
	prof          *trace.Profiler
	methodNames   map[object.OOP]string
	selectorNames map[object.OOP]string
	allocProf     *trace.AllocProfiler
	allocSiteIDs  map[object.OOP]int

	// san is the machine's invariant checker (nil when sanitizing is
	// off), cached like each interpreter's rec.
	san *sanitize.Checker

	// par mirrors Cfg.Parallel. The three host mutexes below are pure
	// host machinery (they never touch virtual time, so the sanitizer's
	// determinism sentinel holds); they exist because in parallel host
	// mode the interpreters really do run concurrently. Their critical
	// sections are brief and never allocate — allocation can stop the
	// world, and a processor blocked on a host mutex is not at a
	// safepoint, so allocating under one would deadlock the rendezvous.
	par    bool
	hostMu sync.Mutex // evaluation rendezvous (evalProc/Result/Done/Failed, dead), errors
	devMu  sync.Mutex // delays, inputQueue
	symMu  sync.Mutex // symbolList, symbolIdx

	// stats holds only VM-level counters (VMErrors); the per-activity
	// counters live on each Interp and are summed by Stats().
	stats  Stats
	errors []string
}

type delayEntry struct {
	wake firefly.Time
	sem  object.OOP
}

// New creates a virtual machine on m with the given heap. Call Genesis
// before use.
func New(m *firefly.Machine, h *heap.Heap, cfg Config) *VM {
	if cfg.QuantumBytecodes <= 0 {
		cfg.QuantumBytecodes = 400
	}
	if cfg.CacheWays != 2 {
		cfg.CacheWays = 1
	}
	vm := &VM{
		Cfg:       cfg,
		M:         m,
		H:         h,
		Disp:      display.NewDisplay(m, cfg.MSMode),
		Sensor:    display.NewSensor(m, cfg.MSMode),
		schedLock: m.NewSpinlock("scheduler", cfg.MSMode),
		cacheLock: m.NewRWSpinlock("method-cache", cfg.MSMode && cfg.MethodCache == CacheSharedLocked),
		freeLock:  m.NewSpinlock("free-contexts", cfg.MSMode && cfg.FreeContexts == FreeCtxSharedLocked),
		symbolIdx: map[string]int{},
		san:       m.Sanitizer(),
		par:       cfg.Parallel,
	}
	if cfg.MethodCache == CacheSharedLocked {
		vm.sharedCache = new([cacheSize]mcEntry)
	}
	if vm.san != nil {
		// Table-3 serialization rows owned by the interpreter: the
		// shared ready queue always; the shared method cache and shared
		// free context lists only under their serialized policies (the
		// replicated defaults are validated by ownership hooks instead).
		vm.san.RegisterGuard("ready-queue", "scheduler")
		if cfg.MethodCache == CacheSharedLocked {
			vm.san.RegisterGuard("shared-method-cache", "method-cache")
		}
		if cfg.FreeContexts == FreeCtxSharedLocked {
			vm.san.RegisterGuard("shared-free-contexts", "free-contexts")
		}
	}

	// Register roots.
	h.AddRootFunc(func(visit func(*object.OOP)) {
		for i := range vm.symbolList {
			visit(&vm.symbolList[i])
		}
		for i := range vm.charTable {
			visit(&vm.charTable[i])
		}
		for i := range vm.delays {
			visit(&vm.delays[i].sem)
		}
		for i := range vm.specialSelectors {
			visit(&vm.specialSelectors[i])
		}
		visit(&vm.evalProc)
		visit(&vm.evalResult)
		visitSpecials(&vm.Specials, visit)
	})
	h.OnPreScavenge(func() {
		// Method caches, inline caches, and decoded-code caches hold
		// raw oops keyed by address: flush. The free context lists are
		// not roots; drop them too.
		if vm.sharedCache != nil {
			for i := range vm.sharedCache {
				vm.sharedCache[i] = mcEntry{}
			}
		}
		for _, in := range vm.Interps {
			in.flushCache()
			in.flushCode()
			in.jitFlush()
		}
		vm.sharedFreeCtx[0] = vm.sharedFreeCtx[0][:0]
		vm.sharedFreeCtx[1] = vm.sharedFreeCtx[1][:0]
	})
	h.OnPostScavenge(func() {
		// The interpreters' register roots were updated by the move:
		// re-key the (persistent) inline caches and re-decode the code
		// each interpreter is currently executing.
		for _, in := range vm.Interps {
			in.rekeyIC()
			in.refreshCode()
		}
	})

	for i := 0; i < m.NumProcs(); i++ {
		in := newInterp(vm, m.Proc(i))
		vm.Interps = append(vm.Interps, in)
	}
	return vm
}

func visitSpecials(s *Specials, visit func(*object.OOP)) {
	slots := []*object.OOP{
		&s.Object, &s.Behavior, &s.Class, &s.Metaclass,
		&s.UndefinedObject, &s.Boolean, &s.TrueCls, &s.FalseCls,
		&s.SmallInteger, &s.Float, &s.Character,
		&s.String, &s.Symbol, &s.Array, &s.ByteArray,
		&s.Association, &s.Dictionary, &s.SystemDictionary,
		&s.MethodDictionary, &s.CompiledMethod,
		&s.MethodContext, &s.BlockContext,
		&s.Process, &s.Semaphore, &s.LinkedList,
		&s.ProcessorScheduler, &s.Message, &s.Delay,
		&s.Magnitude, &s.Number,
		&s.Collection, &s.SequenceableCollection, &s.ArrayedCollection,
		&s.SmalltalkDict, &s.Scheduler, &s.InputSem,
		&s.SymDNU, &s.SymMustBeBool, &s.SymCannotReturn, &s.SymDoIt,
	}
	for _, p := range slots {
		visit(p)
	}
}

// Stats returns a snapshot of interpreter statistics: the VM-level
// counters plus the sum of every interpreter's replicated counters.
// Callers read it while the machine is stopped.
func (vm *VM) Stats() Stats {
	s := vm.stats
	for _, in := range vm.Interps {
		s.add(&in.stats)
	}
	return s
}

// Errors returns VM-level error reports (empty in a healthy run).
func (vm *VM) Errors() []string {
	vm.hostMu.Lock()
	defer vm.hostMu.Unlock()
	return vm.errors
}

// vmError records an internal error; with PanicOnVMError it panics.
func (vm *VM) vmError(format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	vm.hostMu.Lock()
	vm.stats.VMErrors++
	vm.errors = append(vm.errors, msg)
	vm.hostMu.Unlock()
	if vm.Cfg.PanicOnVMError {
		panic("interp: " + msg)
	}
}

// ---- Object construction helpers ----

// ClassOf maps any oop to its class, giving SmallIntegers their class.
func (vm *VM) ClassOf(o object.OOP) object.OOP {
	if o.IsInt() {
		return vm.Specials.SmallInteger
	}
	return vm.H.ClassOf(o)
}

// InternSymbol returns the unique Symbol oop for name. MAY ALLOCATE on
// first interning (and therefore may scavenge). The symbol is allocated
// *outside* symMu — allocation can stop the world, and a processor
// blocked on symMu is not at a safepoint — so two processors racing on
// the same fresh name may both allocate; the loser's copy is garbage
// and the table keeps one winner. No safepoint lies between the
// allocation and the table insert, so the raw oop cannot go stale.
func (vm *VM) InternSymbol(p *firefly.Proc, name string) object.OOP {
	vm.symMu.Lock()
	if i, ok := vm.symbolIdx[name]; ok {
		sym := vm.symbolList[i]
		vm.symMu.Unlock()
		return sym
	}
	vm.symMu.Unlock()
	sym := vm.allocString(p, vm.Specials.Symbol, name)
	vm.symMu.Lock()
	if i, ok := vm.symbolIdx[name]; ok {
		sym = vm.symbolList[i]
	} else {
		vm.symbolIdx[name] = len(vm.symbolList)
		vm.symbolList = append(vm.symbolList, sym)
	}
	vm.symMu.Unlock()
	return sym
}

// SymbolName returns the Go string of a Symbol (or String).
func (vm *VM) SymbolName(sym object.OOP) string {
	return string(vm.H.Bytes(sym))
}

func (vm *VM) allocString(p *firefly.Proc, class object.OOP, s string) object.OOP {
	b := []byte(s)
	var o object.OOP
	if p == nil {
		o = vm.H.AllocateNoGC(class, len(b), object.FmtBytes)
	} else {
		o = vm.H.Allocate(p, class, len(b), object.FmtBytes)
	}
	vm.H.WriteBytes(o, b)
	return o
}

// NewString allocates a String with the given contents. MAY GC.
func (vm *VM) NewString(p *firefly.Proc, s string) object.OOP {
	return vm.allocString(p, vm.Specials.String, s)
}

// allocFields allocates a pointers object, via the no-GC path during
// bootstrap (p == nil).
func (vm *VM) allocFields(p *firefly.Proc, class object.OOP, n int) object.OOP {
	if p == nil {
		return vm.H.AllocateNoGC(class, n, object.FmtPointers)
	}
	return vm.H.Allocate(p, class, n, object.FmtPointers)
}

// NewArray allocates an Array of n nil slots. MAY GC.
func (vm *VM) NewArray(p *firefly.Proc, n int) object.OOP {
	return vm.allocFields(p, vm.Specials.Array, n)
}

// NewFloat allocates a boxed Float. MAY GC.
func (vm *VM) NewFloat(p *firefly.Proc, f float64) object.OOP {
	o := vm.H.Allocate(p, vm.Specials.Float, 1, object.FmtWords)
	vm.H.StoreWord(o, 0, floatBits(f))
	return o
}

// FloatValue reads a boxed Float.
func (vm *VM) FloatValue(o object.OOP) float64 { return bitsToFloat(vm.H.FetchWord(o, 0)) }

// CharFor returns the (cached) Character object for r. MAY GC for
// characters outside the cached range.
func (vm *VM) CharFor(p *firefly.Proc, r rune) object.OOP {
	if int(r) >= 0 && int(r) < len(vm.charTable) {
		return vm.charTable[r]
	}
	c := vm.H.Allocate(p, vm.Specials.Character, CharInstSize, object.FmtPointers)
	vm.H.StoreNoCheck(c, CharValue, object.FromInt(int64(r)))
	return c
}

// CharValueOf returns the code point of a Character object.
func (vm *VM) CharValueOf(c object.OOP) rune {
	return rune(vm.H.Fetch(c, CharValue).Int())
}

// GoString renders a String/Symbol oop as a Go string.
func (vm *VM) GoString(o object.OOP) string { return string(vm.H.Bytes(o)) }

// ---- System dictionary (globals) ----

// sysDictFind locates the Association for key in the Smalltalk system
// dictionary; returns Invalid when absent.
func (vm *VM) sysDictFind(name string) object.OOP {
	d := vm.Specials.SmalltalkDict
	arr := vm.H.Fetch(d, SDArray)
	n := vm.H.FieldCount(arr)
	h := stringHash(name) % uint32(n)
	for i := 0; i < n; i++ {
		slot := vm.H.Fetch(arr, int((int(h)+i)%n))
		if slot == object.Nil {
			return object.Invalid
		}
		key := vm.H.Fetch(slot, AsKey)
		if vm.SymbolName(key) == name {
			return slot
		}
	}
	return object.Invalid
}

// SysDictAt returns the value of global name, or Invalid when absent.
func (vm *VM) SysDictAt(name string) object.OOP {
	a := vm.sysDictFind(name)
	if a == object.Invalid {
		return object.Invalid
	}
	return vm.H.Fetch(a, AsValue)
}

// SysDictDefine binds name to value in the system dictionary, creating
// or updating its Association, and returns the Association. MAY GC.
func (vm *VM) SysDictDefine(p *firefly.Proc, name string, value object.OOP) object.OOP {
	if a := vm.sysDictFind(name); a != object.Invalid {
		if value != object.Invalid {
			vm.H.Store(p, a, AsValue, value)
		}
		return a
	}
	hs := vm.H.Handles(p)
	defer hs.Close()
	vh := hs.Add(value)
	sym := vm.InternSymbol(p, name)
	sh := hs.Add(sym)
	assoc := vm.allocFields(p, vm.Specials.Association, AssociationInstSize)
	vm.H.Store(p, assoc, AsKey, sh.Get())
	if value != object.Invalid {
		vm.H.Store(p, assoc, AsValue, vh.Get())
	}
	ah := hs.Add(assoc)

	d := vm.Specials.SmalltalkDict
	tally := int(vm.H.Fetch(d, SDTally).Int())
	arr := vm.H.Fetch(d, SDArray)
	n := vm.H.FieldCount(arr)
	if (tally+1)*2 > n {
		vm.sysDictGrow(p)
		arr = vm.H.Fetch(d, SDArray)
		n = vm.H.FieldCount(arr)
	}
	vm.sysDictInsert(p, arr, ah.Get())
	vm.H.StoreNoCheck(d, SDTally, object.FromInt(int64(tally+1)))
	return ah.Get()
}

func (vm *VM) sysDictInsert(p *firefly.Proc, arr, assoc object.OOP) {
	name := vm.SymbolName(vm.H.Fetch(assoc, AsKey))
	n := vm.H.FieldCount(arr)
	h := stringHash(name) % uint32(n)
	for i := 0; i < n; i++ {
		idx := int((int(h) + i) % n)
		if vm.H.Fetch(arr, idx) == object.Nil {
			vm.H.Store(p, arr, idx, assoc)
			return
		}
	}
	vm.vmError("system dictionary full")
}

func (vm *VM) sysDictGrow(p *firefly.Proc) {
	d := vm.Specials.SmalltalkDict
	old := vm.H.Fetch(d, SDArray)
	n := vm.H.FieldCount(old)
	hs := vm.H.Handles(p)
	defer hs.Close()
	oldH := hs.Add(old)
	bigger := vm.NewArray(p, n*2)
	old = oldH.Get()
	vm.H.Store(p, d, SDArray, bigger)
	for i := 0; i < n; i++ {
		a := vm.H.Fetch(oldH.Get(), i)
		if a != object.Nil {
			vm.sysDictInsert(p, vm.H.Fetch(d, SDArray), a)
		}
	}
}

// SysDictDo iterates all global associations (key symbol, value).
func (vm *VM) SysDictDo(f func(assoc object.OOP)) {
	arr := vm.H.Fetch(vm.Specials.SmalltalkDict, SDArray)
	n := vm.H.FieldCount(arr)
	for i := 0; i < n; i++ {
		a := vm.H.Fetch(arr, i)
		if a != object.Nil {
			f(a)
		}
	}
}

func stringHash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	if h == 0 {
		h = 1
	}
	return h
}

func floatBits(f float64) uint64   { return math.Float64bits(f) }
func bitsToFloat(b uint64) float64 { return math.Float64frombits(b) }
