package interp

import (
	"strconv"

	"mst/internal/bytecode"
	"mst/internal/firefly"
	"mst/internal/object"
)

// Primitive numbers. Kernel sources reference these in <primitive: N>
// pragmas.
const (
	PrimAdd      = 1
	PrimSub      = 2
	PrimLT       = 3
	PrimGT       = 4
	PrimLE       = 5
	PrimGE       = 6
	PrimEq       = 7
	PrimNE       = 8
	PrimMul      = 9
	PrimDiv      = 10
	PrimMod      = 11
	PrimIntDiv   = 12
	PrimBitAnd   = 14
	PrimBitOr    = 15
	PrimBitXor   = 16
	PrimBitShift = 17
	PrimAsFloat  = 18

	PrimFloatAdd   = 20
	PrimFloatSub   = 21
	PrimFloatMul   = 22
	PrimFloatDiv   = 23
	PrimFloatLT    = 24
	PrimFloatEq    = 25
	PrimFloatTrunc = 26
	PrimFloatPrint = 28

	PrimAt    = 30
	PrimAtPut = 31
	PrimSize  = 32

	PrimIdentical    = 40
	PrimNotIdentical = 41
	PrimClass        = 42
	PrimIdentityHash = 43

	PrimBasicNew     = 50
	PrimBasicNewSize = 51
	PrimInstVarAt    = 52
	PrimInstVarAtPut = 53
	PrimShallowCopy  = 54

	PrimValue      = 60
	PrimValue1     = 61
	PrimValue2     = 62
	PrimValue3     = 63
	PrimValueArgs  = 64
	PrimPerform    = 65
	PrimPerform1   = 66
	PrimPerform2   = 67
	PrimPerformArr = 68

	PrimSignal      = 70
	PrimWait        = 71
	PrimResume      = 72
	PrimSuspend     = 73
	PrimNewProcess  = 74
	PrimTerminate   = 75
	PrimYield       = 76
	PrimThisProcess = 77
	PrimCanRun      = 78
	PrimSetPriority = 79

	PrimReplaceFrom = 80
	PrimCompareStr  = 81
	PrimAsSymbol    = 82
	PrimSymAsString = 83
	PrimStringHash  = 84

	PrimCompile        = 85
	PrimDecompile      = 86
	PrimRemoveSelector = 87

	PrimMsClock  = 90
	PrimScavenge = 91
	PrimVMStat   = 92
	PrimNumProcs = 93
	PrimFullGC   = 94

	PrimTranscriptShow = 95
	PrimDisplayText    = 97
	PrimSensorNext     = 98
	PrimSensorPending  = 99

	PrimDelayRegister = 102
	PrimNewSubclass   = 105
	PrimError         = 110
	PrimAsCharacter   = 116

	PrimSnapshot = 139

	PrimSysDictAtPut = 131
	PrimSysDictAt    = 132
	PrimSysDictHas   = 133
	PrimSysDictAssoc = 134
)

// primReturn pops the receiver and nargs arguments and pushes v.
func (in *Interp) primReturn(nargs int, v object.OOP) bool {
	in.popN(nargs + 1)
	in.push(v)
	return true
}

// callPrimitive runs primitive prim with nargs arguments on the stack.
// It reports success; on failure the stack is unchanged and the caller
// activates the method's fallback code.
func (in *Interp) callPrimitive(prim, nargs int) bool {
	vm := in.vm
	h := vm.H
	recv := in.stackAt(nargs)

	switch prim {
	case PrimAdd, PrimSub, PrimMul, PrimDiv, PrimMod, PrimIntDiv,
		PrimBitAnd, PrimBitOr, PrimBitXor, PrimBitShift:
		arg := in.stackAt(0)
		if !recv.IsInt() || !arg.IsInt() {
			return false
		}
		a, b := recv.Int(), arg.Int()
		var r int64
		switch prim {
		case PrimAdd:
			r = a + b
		case PrimSub:
			r = a - b
		case PrimMul:
			r = a * b
			if a != 0 && r/a != b {
				return false
			}
		case PrimDiv:
			if b == 0 || a%b != 0 {
				return false // non-exact division fails over to Fraction/Float code
			}
			r = a / b
		case PrimMod:
			if b == 0 {
				return false
			}
			r = a - floorDiv(a, b)*b
		case PrimIntDiv:
			if b == 0 {
				return false
			}
			r = floorDiv(a, b)
		case PrimBitAnd:
			r = a & b
		case PrimBitOr:
			r = a | b
		case PrimBitXor:
			r = a ^ b
		case PrimBitShift:
			if v, ok := intArith(bytecode.OpSendBitShift, a, b); ok {
				return in.primReturn(nargs, v)
			}
			return false
		}
		if r > object.MaxSmallInt || r < object.MinSmallInt {
			return false
		}
		return in.primReturn(nargs, object.FromInt(r))

	case PrimLT, PrimGT, PrimLE, PrimGE, PrimEq, PrimNE:
		arg := in.stackAt(0)
		if !recv.IsInt() || !arg.IsInt() {
			return false
		}
		a, b := recv.Int(), arg.Int()
		var r bool
		switch prim {
		case PrimLT:
			r = a < b
		case PrimGT:
			r = a > b
		case PrimLE:
			r = a <= b
		case PrimGE:
			r = a >= b
		case PrimEq:
			r = a == b
		case PrimNE:
			r = a != b
		}
		return in.primReturn(nargs, object.FromBool(r))

	case PrimAsFloat:
		if !recv.IsInt() {
			return false
		}
		f := vm.NewFloat(in.p, float64(recv.Int()))
		return in.primReturn(nargs, f)

	case PrimFloatAdd, PrimFloatSub, PrimFloatMul, PrimFloatDiv,
		PrimFloatLT, PrimFloatEq:
		arg := in.stackAt(0)
		if !in.isFloat(recv) {
			return false
		}
		var b float64
		switch {
		case in.isFloat(arg):
			b = vm.FloatValue(arg)
		case arg.IsInt():
			b = float64(arg.Int())
		default:
			return false
		}
		a := vm.FloatValue(recv)
		switch prim {
		case PrimFloatLT:
			return in.primReturn(nargs, object.FromBool(a < b))
		case PrimFloatEq:
			return in.primReturn(nargs, object.FromBool(a == b))
		}
		var r float64
		switch prim {
		case PrimFloatAdd:
			r = a + b
		case PrimFloatSub:
			r = a - b
		case PrimFloatMul:
			r = a * b
		case PrimFloatDiv:
			if b == 0 {
				return false
			}
			r = a / b
		}
		f := vm.NewFloat(in.p, r)
		return in.primReturn(nargs, f)

	case PrimFloatTrunc:
		if !in.isFloat(recv) {
			return false
		}
		v := int64(vm.FloatValue(recv))
		return in.primReturn(nargs, object.FromInt(v))

	case PrimFloatPrint:
		if !in.isFloat(recv) {
			return false
		}
		s := strconv.FormatFloat(vm.FloatValue(recv), 'g', -1, 64)
		str := vm.NewString(in.p, s)
		return in.primReturn(nargs, str)

	case PrimAt:
		if v, ok := in.basicAt(recv, in.stackAt(0)); ok {
			return in.primReturn(nargs, v)
		}
		return false
	case PrimAtPut:
		val := in.stackAt(0)
		if in.basicAtPut(recv, in.stackAt(1), val) {
			return in.primReturn(nargs, val)
		}
		return false
	case PrimSize:
		if n, ok := in.basicSize(recv); ok {
			return in.primReturn(nargs, object.FromInt(int64(n)))
		}
		return false

	case PrimIdentical:
		return in.primReturn(nargs, object.FromBool(recv == in.stackAt(0)))
	case PrimNotIdentical:
		return in.primReturn(nargs, object.FromBool(recv != in.stackAt(0)))
	case PrimClass:
		return in.primReturn(nargs, vm.ClassOf(recv))
	case PrimIdentityHash:
		return in.primReturn(nargs, object.FromInt(int64(h.IdentityHash(recv))))

	case PrimBasicNew:
		if recv.IsInt() {
			return false
		}
		instSize, kind := DecodeFormat(h.Fetch(recv, ClsFormat))
		if kind != KindFixed {
			return false // indexable classes need new:
		}
		o := vm.allocFields(in.p, recv, instSize)
		return in.primReturn(nargs, o)

	case PrimBasicNewSize:
		n := in.stackAt(0)
		if recv.IsInt() || !n.IsInt() || n.Int() < 0 {
			return false
		}
		size := int(n.Int())
		instSize, kind := DecodeFormat(h.Fetch(recv, ClsFormat))
		var o object.OOP
		switch kind {
		case KindIdxPointers:
			o = vm.allocFields(in.p, recv, instSize+size)
		case KindIdxBytes, KindIdxChars:
			o = h.Allocate(in.p, recv, size, object.FmtBytes)
		case KindIdxWords:
			o = h.Allocate(in.p, recv, size, object.FmtWords)
		default:
			return false
		}
		return in.primReturn(nargs, o)

	case PrimInstVarAt:
		idx := in.stackAt(0)
		if !idx.IsInt() || recv.IsInt() {
			return false
		}
		i := int(idx.Int())
		instSize, _ := DecodeFormat(h.Fetch(vm.ClassOf(recv), ClsFormat))
		if i < 1 || i > instSize {
			return false
		}
		return in.primReturn(nargs, h.Fetch(recv, i-1))

	case PrimInstVarAtPut:
		idx := in.stackAt(1)
		val := in.stackAt(0)
		if !idx.IsInt() || recv.IsInt() {
			return false
		}
		i := int(idx.Int())
		instSize, _ := DecodeFormat(h.Fetch(vm.ClassOf(recv), ClsFormat))
		if i < 1 || i > instSize {
			return false
		}
		h.Store(in.p, recv, i-1, val)
		return in.primReturn(nargs, val)

	case PrimShallowCopy:
		return in.primShallowCopy(nargs, recv)

	case PrimValue, PrimValue1, PrimValue2, PrimValue3:
		want := prim - PrimValue
		if nargs != want || !in.isBlockOOP(recv) {
			return false
		}
		return in.blockValue(recv, nargs)

	case PrimValueArgs:
		return in.primValueWithArgs(nargs, recv)

	case PrimPerform, PrimPerform1, PrimPerform2:
		return in.primPerform(nargs)

	case PrimPerformArr:
		return in.primPerformWithArgs(nargs)

	case PrimSignal:
		if vm.ClassOf(recv) != vm.Specials.Semaphore {
			return false
		}
		in.primReturn(nargs, recv)
		in.semSignal(recv)
		return true

	case PrimWait:
		if vm.ClassOf(recv) != vm.Specials.Semaphore {
			return false
		}
		in.primReturn(nargs, recv)
		in.semWait(recv)
		return true

	case PrimResume:
		if vm.ClassOf(recv) != vm.Specials.Process {
			return false
		}
		in.primReturn(nargs, recv)
		in.procResume(recv)
		return true

	case PrimSuspend:
		if vm.ClassOf(recv) != vm.Specials.Process {
			return false
		}
		in.primReturn(nargs, recv)
		in.procSuspend(recv)
		return true

	case PrimNewProcess:
		return in.primNewProcess(nargs, recv)

	case PrimTerminate:
		if vm.ClassOf(recv) != vm.Specials.Process {
			return false
		}
		in.primReturn(nargs, recv)
		in.procTerminate(recv)
		return true

	case PrimYield:
		in.primReturn(nargs, recv)
		if in.proc != object.Nil {
			in.procYield()
		}
		return true

	case PrimThisProcess:
		return in.primReturn(nargs, in.proc)

	case PrimCanRun:
		target := in.stackAt(0)
		if vm.ClassOf(target) != vm.Specials.Process {
			return false
		}
		return in.primReturn(nargs, object.FromBool(in.canRun(target)))

	case PrimSetPriority:
		return in.primSetPriority(nargs, recv)

	case PrimReplaceFrom:
		return in.primReplaceFrom(nargs, recv)

	case PrimCompareStr:
		arg := in.stackAt(0)
		if !in.isStringy(recv) || !in.isStringy(arg) {
			return false
		}
		a, b := vm.GoString(recv), vm.GoString(arg)
		r := 0
		if a < b {
			r = -1
		} else if a > b {
			r = 1
		}
		return in.primReturn(nargs, object.FromInt(int64(r)))

	case PrimAsSymbol:
		if !in.isStringy(recv) {
			return false
		}
		sym := vm.InternSymbol(in.p, vm.GoString(recv))
		return in.primReturn(nargs, sym)

	case PrimSymAsString:
		if !in.isStringy(recv) {
			return false
		}
		s := vm.NewString(in.p, vm.GoString(recv))
		return in.primReturn(nargs, s)

	case PrimStringHash:
		if !in.isStringy(recv) {
			return false
		}
		return in.primReturn(nargs, object.FromInt(int64(stringHash(vm.GoString(recv)))))

	case PrimCompile:
		return in.primCompile(nargs, recv)

	case PrimDecompile:
		if vm.ClassOf(recv) != vm.Specials.CompiledMethod {
			return false
		}
		// Decompiler/debugger attach: the method must run interpreted
		// from here on (per-processor tier — peers keep their copies).
		in.jitForget(recv)
		s := vm.NewString(in.p, vm.Disassemble(recv))
		return in.primReturn(nargs, s)

	case PrimRemoveSelector:
		return in.primRemoveSelector(nargs, recv)

	case PrimMsClock:
		return in.primReturn(nargs, object.FromInt(in.p.Now().Ms()))

	case PrimScavenge:
		vm.H.Scavenge(in.p)
		return in.primReturn(nargs, in.stackAt(nargs))

	case PrimFullGC:
		vm.H.FullCollect(in.p)
		return in.primReturn(nargs, in.stackAt(nargs))

	case PrimVMStat:
		idx := in.stackAt(0)
		if !idx.IsInt() {
			return false
		}
		return in.primReturn(nargs, object.FromInt(in.statAt(int(idx.Int()))))

	case PrimNumProcs:
		return in.primReturn(nargs, object.FromInt(int64(vm.M.NumProcs())))

	case PrimTranscriptShow:
		arg := in.stackAt(0)
		if !in.isStringy(arg) {
			return false
		}
		vm.Disp.TranscriptShow(in.p, vm.GoString(arg))
		return in.primReturn(nargs, recv)

	case PrimDisplayText:
		s := in.stackAt(2)
		x := in.stackAt(1)
		y := in.stackAt(0)
		if !in.isStringy(s) || !x.IsInt() || !y.IsInt() {
			return false
		}
		vm.Disp.PostText(in.p, vm.GoString(s), int(x.Int()), int(y.Int()))
		return in.primReturn(nargs, recv)

	case PrimSensorNext:
		// Pop under devMu, then allocate: NewArray may scavenge, and a
		// host mutex must never be held across an allocation.
		vm.devMu.Lock()
		if len(vm.inputQueue) == 0 {
			vm.devMu.Unlock()
			return in.primReturn(nargs, object.Nil)
		}
		e := vm.inputQueue[0]
		copy(vm.inputQueue, vm.inputQueue[1:])
		vm.inputQueue = vm.inputQueue[:len(vm.inputQueue)-1]
		vm.devMu.Unlock()
		arr := vm.NewArray(in.p, 4)
		h.StoreNoCheck(arr, 0, object.FromInt(int64(e.Kind)))
		h.StoreNoCheck(arr, 1, object.FromInt(int64(e.Key)))
		h.StoreNoCheck(arr, 2, object.FromInt(int64(e.X)))
		h.StoreNoCheck(arr, 3, object.FromInt(int64(e.Y)))
		return in.primReturn(nargs, arr)

	case PrimSensorPending:
		vm.devMu.Lock()
		queued := len(vm.inputQueue) > 0
		vm.devMu.Unlock()
		return in.primReturn(nargs,
			object.FromBool(queued || vm.Sensor.HasPending()))

	case PrimDelayRegister:
		sem := in.stackAt(1)
		ms := in.stackAt(0)
		if !ms.IsInt() || vm.ClassOf(sem) != vm.Specials.Semaphore {
			return false
		}
		vm.registerDelay(in.p.Now()+firefly.Time(ms.Int())*firefly.TicksPerMS, sem)
		return in.primReturn(nargs, recv)

	case PrimNewSubclass:
		return in.primNewSubclass(nargs, recv)

	case PrimError:
		arg := in.stackAt(0)
		msg := vm.DescribeOOP(arg)
		if in.isStringy(arg) {
			msg = vm.GoString(arg)
		}
		vm.Disp.TranscriptShow(in.p, "Error: "+msg+"\n")
		vm.hostMu.Lock()
		vm.errors = append(vm.errors, "Smalltalk error: "+msg)
		if in.proc == vm.evalProc && in.proc != object.Nil {
			vm.evalFailed = "Smalltalk error: " + msg
		}
		vm.hostMu.Unlock()
		in.terminateCurrentProcess()
		return true

	case PrimSnapshot:
		if nargs != 1 {
			return false
		}
		return in.primSnapshot(nargs, recv)

	case PrimAsCharacter:
		if !recv.IsInt() {
			return false
		}
		c := vm.CharFor(in.p, rune(recv.Int()))
		return in.primReturn(nargs, c)

	case PrimSysDictAtPut:
		key := in.stackAt(1)
		val := in.stackAt(0)
		if !in.isStringy(key) {
			return false
		}
		vm.SysDictDefine(in.p, vm.GoString(key), val)
		return in.primReturn(nargs, in.stackAt(0))

	case PrimSysDictAt:
		key := in.stackAt(0)
		if !in.isStringy(key) {
			return false
		}
		v := vm.SysDictAt(vm.GoString(key))
		if v == object.Invalid {
			return false
		}
		return in.primReturn(nargs, v)

	case PrimSysDictHas:
		key := in.stackAt(0)
		if !in.isStringy(key) {
			return false
		}
		return in.primReturn(nargs,
			object.FromBool(vm.sysDictFind(vm.GoString(key)) != object.Invalid))

	case PrimSysDictAssoc:
		count := 0
		vm.SysDictDo(func(object.OOP) { count++ })
		arr := vm.NewArray(in.p, count)
		i := 0
		vm.SysDictDo(func(a object.OOP) {
			if i < count {
				h.Store(in.p, arr, i, a)
				i++
			}
		})
		return in.primReturn(nargs, arr)
	}
	return false
}
