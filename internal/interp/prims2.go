package interp

import (
	"mst/internal/object"
)

// Helpers and the longer primitive bodies.

func (in *Interp) isFloat(o object.OOP) bool {
	return o.IsPtr() && o != object.Nil && in.vm.H.ClassOf(o) == in.vm.Specials.Float
}

func (in *Interp) isBlockOOP(o object.OOP) bool {
	return o.IsPtr() && o != object.Nil && in.vm.H.ClassOf(o) == in.vm.Specials.BlockContext
}

// isStringy accepts Strings, Symbols, and their subclasses (byte
// objects whose class kind is characters).
func (in *Interp) isStringy(o object.OOP) bool {
	if !o.IsPtr() || o == object.Nil {
		return false
	}
	cls := in.vm.H.ClassOf(o)
	_, kind := DecodeFormat(in.vm.H.Fetch(cls, ClsFormat))
	return kind == KindIdxChars
}

// primShallowCopy copies the receiver's fields into a fresh instance.
func (in *Interp) primShallowCopy(nargs int, recv object.OOP) bool {
	vm := in.vm
	h := vm.H
	if recv.IsInt() || recv == object.Nil || recv == object.True || recv == object.False {
		return in.primReturn(nargs, recv)
	}
	hd := h.Header(recv)
	cls := h.ClassOf(recv)
	var cp object.OOP
	switch hd.Format() {
	case object.FmtPointers:
		cp = vm.allocFields(in.p, cls, hd.FieldCount())
		recv = in.stackAt(nargs) // re-read after allocation
		for i := 0; i < h.Header(recv).FieldCount(); i++ {
			h.Store(in.p, cp, i, h.Fetch(recv, i))
		}
	case object.FmtBytes:
		cp = h.Allocate(in.p, cls, hd.ByteLen(), object.FmtBytes)
		recv = in.stackAt(nargs)
		h.WriteBytes(cp, h.Bytes(recv))
	case object.FmtWords:
		cp = h.Allocate(in.p, cls, hd.FieldCount(), object.FmtWords)
		recv = in.stackAt(nargs)
		for i := 0; i < h.Header(recv).FieldCount(); i++ {
			h.StoreWord(cp, i, h.FetchWord(recv, i))
		}
	}
	return in.primReturn(nargs, cp)
}

// primValueWithArgs implements valueWithArguments: anArray.
func (in *Interp) primValueWithArgs(nargs int, recv object.OOP) bool {
	vm := in.vm
	h := vm.H
	if nargs != 1 || !in.isBlockOOP(recv) {
		return false
	}
	args := in.stackAt(0)
	if args.IsInt() || args == object.Nil || h.Header(args).Format() != object.FmtPointers {
		return false
	}
	n := h.FieldCount(args)
	info := h.Fetch(recv, BCtxInfo).Int()
	if int(info&0xFF) != n {
		return false
	}
	// Reshape the stack from [block, array] to [block, a1..an].
	in.popN(1)
	for i := 0; i < n; i++ {
		in.push(h.Fetch(args, i))
	}
	return in.blockValue(in.stackAt(n), n)
}

// primPerform implements perform:, perform:with:, perform:with:with:.
// The stack [recv, sel, a1..ak] is reshaped to [recv, a1..ak] and the
// message is re-dispatched.
func (in *Interp) primPerform(nargs int) bool {
	sel := in.stackAt(nargs - 1)
	if !in.isStringy(sel) {
		return false
	}
	k := nargs - 1 // real argument count
	// Shift arguments down over the selector.
	for i := 0; i < k; i++ {
		v := in.stackAt(k - 1 - i)
		in.vm.H.Store(in.p, in.ctx, in.base+in.sp-nargs+i, v)
	}
	in.popN(1)
	in.send(sel, k, false, -1)
	return true
}

// primPerformWithArgs implements perform:withArguments:.
func (in *Interp) primPerformWithArgs(nargs int) bool {
	vm := in.vm
	h := vm.H
	if nargs != 2 {
		return false
	}
	sel := in.stackAt(1)
	args := in.stackAt(0)
	if !in.isStringy(sel) || args.IsInt() || args == object.Nil ||
		h.Header(args).Format() != object.FmtPointers {
		return false
	}
	n := h.FieldCount(args)
	in.popN(2)
	for i := 0; i < n; i++ {
		in.push(h.Fetch(args, i))
	}
	in.send(sel, n, false, -1)
	return true
}

// primNewProcess implements BlockContext>>newProcess: wrap the block in
// a suspended Process ready to run from its initial pc.
func (in *Interp) primNewProcess(nargs int, recv object.OOP) bool {
	vm := in.vm
	h := vm.H
	if !in.isBlockOOP(recv) || nargs != 0 {
		return false
	}
	info := h.Fetch(recv, BCtxInfo).Int()
	if info&0xFF != 0 {
		return false // only zero-argument blocks fork
	}
	pri := int64(UserPriority)
	if in.proc != object.Nil {
		pri = h.Fetch(in.proc, PrPriority).Int()
	}

	hs := h.Handles(in.p)
	defer hs.Close()
	blkH := hs.Add(recv)
	proc := vm.allocFields(in.p, vm.Specials.Process, ProcessInstSize)
	blk := blkH.Get()
	h.StoreNoCheck(blk, BCtxCaller, object.Nil)
	h.StoreNoCheck(blk, BCtxPC, h.Fetch(blk, BCtxInitialPC))
	h.StoreNoCheck(blk, BCtxSP, object.FromInt(0))
	h.Store(in.p, proc, PrSuspendedContext, blk)
	h.StoreNoCheck(proc, PrPriority, object.FromInt(pri))
	h.StoreNoCheck(proc, PrState, object.FromInt(StateSuspended))
	return in.primReturn(nargs, proc)
}

// primSetPriority implements Process>>priority: newPriority.
func (in *Interp) primSetPriority(nargs int, recv object.OOP) bool {
	vm := in.vm
	h := vm.H
	arg := in.stackAt(0)
	if vm.ClassOf(recv) != vm.Specials.Process || !arg.IsInt() {
		return false
	}
	pri := arg.Int()
	if pri < 1 || pri > NumPriorities {
		return false
	}
	vm.schedLock.Acquire(in.p)
	st := h.Fetch(recv, PrState).Int()
	if st == StateReady || st == StateRunning {
		// Move between ready lists.
		vm.unlinkFromCurrentList(in.p, recv)
		h.StoreNoCheck(recv, PrPriority, object.FromInt(pri))
		vm.listAppend(in.p, vm.readyList(int(pri)), recv)
	} else {
		h.StoreNoCheck(recv, PrPriority, object.FromInt(pri))
	}
	// Lowering the running Process below a ready one reschedules, as
	// any scheduling-state change does in Smalltalk-80.
	if recv == in.proc {
		if next := vm.findReady(in.p); next != object.Nil &&
			h.Fetch(next, PrPriority).Int() > pri {
			in.primReturn(nargs, recv)
			in.parkCurrent(StateReady)
			h.StoreNoCheck(next, PrState, object.FromInt(StateRunning))
			in.switchToProcess(next)
			vm.schedLock.Release(in.p)
			return true
		}
	}
	vm.schedLock.Release(in.p)
	return in.primReturn(nargs, recv)
}

// primReplaceFrom implements replaceFrom:to:with:startingAt: for byte
// and pointer indexables of matching layout.
func (in *Interp) primReplaceFrom(nargs int, recv object.OOP) bool {
	vm := in.vm
	h := vm.H
	if nargs != 4 || recv.IsInt() || recv == object.Nil {
		return false
	}
	start := in.stackAt(3)
	stop := in.stackAt(2)
	src := in.stackAt(1)
	srcStart := in.stackAt(0)
	if !start.IsInt() || !stop.IsInt() || !srcStart.IsInt() ||
		src.IsInt() || src == object.Nil {
		return false
	}
	a, b, sa := int(start.Int()), int(stop.Int()), int(srcStart.Int())
	if b < a {
		return in.primReturn(nargs, recv)
	}
	dstHdr := h.Header(recv)
	srcHdr := h.Header(src)
	if dstHdr.Format() != srcHdr.Format() {
		return false
	}
	switch dstHdr.Format() {
	case object.FmtBytes:
		if a < 1 || b > dstHdr.ByteLen() || sa < 1 || sa+(b-a) > srcHdr.ByteLen() {
			return false
		}
		if recv == src && sa < a {
			for i := b - a; i >= 0; i-- {
				h.StoreByte(recv, a-1+i, h.FetchByte(src, sa-1+i))
			}
		} else {
			for i := 0; i <= b-a; i++ {
				h.StoreByte(recv, a-1+i, h.FetchByte(src, sa-1+i))
			}
		}
	case object.FmtPointers:
		dInst, dKind := DecodeFormat(h.Fetch(vm.ClassOf(recv), ClsFormat))
		sInst, sKind := DecodeFormat(h.Fetch(vm.ClassOf(src), ClsFormat))
		if dKind != KindIdxPointers || sKind != KindIdxPointers {
			return false
		}
		dn := h.FieldCount(recv) - dInst
		sn := h.FieldCount(src) - sInst
		if a < 1 || b > dn || sa < 1 || sa+(b-a) > sn {
			return false
		}
		if recv == src && sa < a {
			for i := b - a; i >= 0; i-- {
				h.Store(in.p, recv, dInst+a-2+i+1, h.Fetch(src, sInst+sa-2+i+1))
			}
		} else {
			for i := 0; i <= b-a; i++ {
				h.Store(in.p, recv, dInst+a-1+i, h.Fetch(src, sInst+sa-1+i))
			}
		}
	default:
		return false
	}
	return in.primReturn(nargs, recv)
}

// primCompile implements Behavior>>compile:classified: through the Go
// compiler (the paper's compiler is Smalltalk code; see DESIGN.md §3).
func (in *Interp) primCompile(nargs int, recv object.OOP) bool {
	vm := in.vm
	if nargs != 2 || recv.IsInt() {
		return false
	}
	src := in.stackAt(1)
	cat := in.stackAt(0)
	if !in.isStringy(src) || !in.isStringy(cat) {
		return false
	}
	mo, err := vm.CompileAndInstall(in.p, recv, vm.GoString(src), vm.GoString(cat))
	if err != nil {
		vm.hostMu.Lock()
		vm.errors = append(vm.errors, "compile: "+err.Error())
		vm.hostMu.Unlock()
		return false
	}
	return in.primReturn(nargs, mo)
}

// primRemoveSelector rebuilds the method dictionary without the
// selector (open addressing needs a rehash on removal).
func (in *Interp) primRemoveSelector(nargs int, recv object.OOP) bool {
	vm := in.vm
	h := vm.H
	sel := in.stackAt(0)
	if recv.IsInt() || !in.isStringy(sel) {
		return false
	}
	dict := h.Fetch(recv, ClsMethodDict)
	if _, ok := vm.methodDictLookup(dict, sel); !ok {
		return false
	}
	hs := h.Handles(in.p)
	defer hs.Close()
	clsH := hs.Add(recv)
	selH := hs.Add(sel)
	oldKeysH := hs.Add(h.Fetch(dict, MDKeys))
	oldValsH := hs.Add(h.Fetch(dict, MDValues))
	n := h.FieldCount(oldKeysH.Get())

	newKeysH := hs.Add(vm.NewArray(in.p, n))
	newValsH := hs.Add(vm.NewArray(in.p, n))
	dictH := hs.Add(vm.allocFields(in.p, vm.Specials.MethodDictionary, MethodDictInstSize))
	tally := 0
	for i := 0; i < n; i++ {
		k := h.Fetch(oldKeysH.Get(), i)
		if k == object.Nil || k == selH.Get() {
			continue
		}
		v := h.Fetch(oldValsH.Get(), i)
		idx := int(h.IdentityHash(k)) & (n - 1)
		for j := 0; j < n; j++ {
			s := (idx + j) & (n - 1)
			if h.Fetch(newKeysH.Get(), s) == object.Nil {
				h.Store(in.p, newKeysH.Get(), s, k)
				h.Store(in.p, newValsH.Get(), s, v)
				break
			}
		}
		tally++
	}
	h.StoreNoCheck(dictH.Get(), MDTally, object.FromInt(int64(tally)))
	h.Store(in.p, dictH.Get(), MDKeys, newKeysH.Get())
	h.Store(in.p, dictH.Get(), MDValues, newValsH.Get())
	h.Store(in.p, clsH.Get(), ClsMethodDict, dictH.Get())
	vm.flushAllCaches()
	return in.primReturn(nargs, clsH.Get())
}

// primNewSubclass implements the subclass-creation primitive behind
// `subclass:instanceVariableNames:category:`.
func (in *Interp) primNewSubclass(nargs int, recv object.OOP) bool {
	vm := in.vm
	if nargs != 3 || recv.IsInt() {
		return false
	}
	nameO := in.stackAt(2)
	ivO := in.stackAt(1)
	catO := in.stackAt(0)
	if !in.isStringy(nameO) || !in.isStringy(ivO) || !in.isStringy(catO) {
		return false
	}
	name := vm.GoString(nameO)
	ivs := splitWords(vm.GoString(ivO))
	cat := vm.GoString(catO)
	if existing := vm.SysDictAt(name); existing != object.Invalid && existing != object.Nil {
		// Redefinition: keep it simple, fail the primitive so image
		// code can decide (kernel sources never redefine).
		return false
	}
	cls := vm.CreateClass(in.p, name, recv, ivs, KindFixed, cat)
	return in.primReturn(nargs, cls)
}

func splitWords(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// statAt exposes VM statistics to the image (primitive 92). In
// deterministic mode the interpreter counters are summed across all
// interpreters (the historical — and golden — behaviour). In parallel
// host mode the other interpreters are mutating their counters
// concurrently, so the primitive reports the asking interpreter's own
// replica instead; the heap counters are safe either way (shard sums
// are atomic, scavenge counters only change while the world is
// stopped).
func (in *Interp) statAt(i int) int64 {
	vm := in.vm
	hs := vm.H.Stats()
	is := in.stats
	if !vm.par {
		is = vm.Stats()
	}
	switch i {
	case 1:
		return int64(hs.Scavenges)
	case 2:
		return int64(is.Bytecodes)
	case 3:
		return int64(is.Sends)
	case 4:
		return int64(is.CacheHits)
	case 5:
		return int64(is.CacheMisses)
	case 6:
		return int64(is.ProcessSwitches)
	case 7:
		return int64(is.ContextsAlloc)
	case 8:
		return int64(is.ContextsRecycled)
	case 9:
		return int64(hs.Allocations)
	case 10:
		return int64(hs.AllocatedWords)
	case 11:
		return int64(hs.ScavengeTime)
	case 12:
		return int64(is.DNUs)
	default:
		return 0
	}
}
