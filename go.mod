module mst

go 1.22
