package mst_test

import (
	"reflect"
	"testing"

	"mst/internal/bench"
	"mst/internal/core"
	"mst/internal/trace"
)

// Golden determinism test: the default configurations (the paper's
// four system states) must produce bit-identical virtual times and
// interpreter counters across commits. The inline-cache machinery and
// the host-side dispatch optimizations are required to leave these
// numbers untouched — anything that shifts them changed the modeled
// virtual machine, not just the host implementation, and needs the
// golden values re-derived deliberately.
//
// Values are from a fresh boot, first run of each benchmark.
var goldenVMS = map[string]map[string]int64{
	"baseline": {"printClassHierarchy": 486, "decompileClass": 175},
	"ms":       {"printClassHierarchy": 503, "decompileClass": 182},
	"ms-idle":  {"printClassHierarchy": 586, "decompileClass": 203},
	"ms-busy":  {"printClassHierarchy": 670, "decompileClass": 237},
}

var goldenStats = map[string]struct {
	sends, hits, misses, dict uint64
}{
	"baseline": {15234, 14259, 975, 3944},
	"ms":       {15234, 14259, 975, 3944},
	"ms-idle":  {15246, 14222, 1024, 3934},
	"ms-busy":  {117828, 114769, 3059, 10428},
}

// TestGoldenTraceInvariance: attaching the flight recorder and the
// selector profiler must not move virtual time or any counter. Every
// emission happens host-side behind a nil check; this test is the
// enforcement — each standard state runs once untraced and once with
// both observers on, and the virtual times and the complete Stats
// snapshot must match bit-for-bit.
func TestGoldenTraceInvariance(t *testing.T) {
	for _, st := range bench.StandardStates() {
		st := st
		t.Run(st.Name, func(t *testing.T) {
			type outcome struct {
				vms   []int64
				stats core.Stats
			}
			run := func(observed bool) outcome {
				s := st
				if observed {
					base := s.Config
					s.Config = func() core.Config {
						cfg := base()
						cfg.TraceEvents = trace.DefaultRingSize
						cfg.Profile = true
						return cfg
					}
				}
				sys, err := bench.NewBenchSystem(s)
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Shutdown()
				var o outcome
				for _, b := range []string{"printClassHierarchy", "decompileClass"} {
					vms, err := bench.RunMacro(sys, b)
					if err != nil {
						t.Fatal(err)
					}
					o.vms = append(o.vms, vms)
				}
				o.stats = sys.Stats()
				if observed {
					if sys.Metrics().Trace.Events == 0 {
						t.Error("observed run recorded no events")
					}
				}
				return o
			}
			plain, observed := run(false), run(true)
			if !reflect.DeepEqual(plain.vms, observed.vms) {
				t.Errorf("%s: virtual times diverge with tracing on: %v vs %v",
					st.Name, plain.vms, observed.vms)
			}
			if !reflect.DeepEqual(plain.stats, observed.stats) {
				t.Errorf("%s: stats diverge with tracing on:\nuntraced: %+v\ntraced:   %+v",
					st.Name, plain.stats, observed.stats)
			}
		})
	}
}

// TestGoldenHistogramInvariance: the latency histograms and the
// allocation-site profiler must be as invisible as the flight recorder.
// Every recording site is a nil-guarded host-side observation — pause
// and phase ticks, dispatch latency, per-lock waits, allocation-site
// attribution — so turning them all on must leave the virtual times and
// the complete Stats snapshot bit-identical in every standard state.
func TestGoldenHistogramInvariance(t *testing.T) {
	for _, st := range bench.StandardStates() {
		st := st
		t.Run(st.Name, func(t *testing.T) {
			type outcome struct {
				vms   []int64
				stats core.Stats
			}
			run := func(observed bool) outcome {
				s := st
				if observed {
					base := s.Config
					s.Config = func() core.Config {
						cfg := base()
						cfg.Histograms = true
						cfg.AllocProfile = true
						return cfg
					}
				}
				sys, err := bench.NewBenchSystem(s)
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Shutdown()
				var o outcome
				for _, b := range []string{"printClassHierarchy", "decompileClass"} {
					vms, err := bench.RunMacro(sys, b)
					if err != nil {
						t.Fatal(err)
					}
					o.vms = append(o.vms, vms)
				}
				o.stats = sys.Stats()
				if observed {
					lat := sys.Metrics().Latency
					if lat == nil {
						t.Fatal("observed run has no latency section")
					}
					if lat.Dispatch.Count == 0 {
						t.Error("observed run recorded no dispatch latencies")
					}
					if o.stats.Heap.Scavenges > 0 && lat.ScavengePause.Count == 0 {
						t.Error("scavenges ran but recorded no pause samples")
					}
					if rep, err := sys.AllocProfileReport(10); err != nil || rep == "" {
						t.Errorf("allocation profile unavailable: %v", err)
					}
				}
				return o
			}
			plain, observed := run(false), run(true)
			if !reflect.DeepEqual(plain.vms, observed.vms) {
				t.Errorf("%s: virtual times diverge with histograms on: %v vs %v",
					st.Name, plain.vms, observed.vms)
			}
			if !reflect.DeepEqual(plain.stats, observed.stats) {
				t.Errorf("%s: stats diverge with histograms on:\nplain:    %+v\nobserved: %+v",
					st.Name, plain.stats, observed.stats)
			}
		})
	}
}

// TestGoldenSanitizeInvariance: the mscheck invariant sanitizer must be
// as invisible as the flight recorder — sanitizer-on runs leave virtual
// time and every counter bit-identical — and the real workload must be
// violation-free in every standard state (the Table 3 disciplines
// actually hold).
func TestGoldenSanitizeInvariance(t *testing.T) {
	for _, st := range bench.StandardStates() {
		st := st
		t.Run(st.Name, func(t *testing.T) {
			type outcome struct {
				vms   []int64
				stats core.Stats
			}
			run := func(sanitized bool) outcome {
				s := st
				if sanitized {
					base := s.Config
					s.Config = func() core.Config {
						cfg := base()
						cfg.Sanitize = true
						return cfg
					}
				}
				sys, err := bench.NewBenchSystem(s)
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Shutdown()
				var o outcome
				for _, b := range []string{"printClassHierarchy", "decompileClass"} {
					vms, err := bench.RunMacro(sys, b)
					if err != nil {
						t.Fatal(err)
					}
					o.vms = append(o.vms, vms)
				}
				o.stats = sys.Stats()
				if sanitized {
					san := sys.Sanitizer()
					if san == nil {
						t.Fatal("sanitizer did not attach")
					}
					if !san.Clean() {
						t.Errorf("%s: sanitizer found violations on the real workload:\n%s",
							st.Name, san.Report())
					}
					if cs := san.Stats(); cs.AccessChecks == 0 || cs.BarrierScans == 0 {
						t.Errorf("%s: sanitizer did no checking: %+v", st.Name, cs)
					}
				}
				return o
			}
			plain, checked := run(false), run(true)
			if !reflect.DeepEqual(plain.vms, checked.vms) {
				t.Errorf("%s: virtual times diverge with the sanitizer on: %v vs %v",
					st.Name, plain.vms, checked.vms)
			}
			if !reflect.DeepEqual(plain.stats, checked.stats) {
				t.Errorf("%s: stats diverge with the sanitizer on:\noff: %+v\non:  %+v",
					st.Name, plain.stats, checked.stats)
			}
		})
	}
}

// TestGoldenParScavengeOff: with the parallel scavenger compiled in
// but disabled (the default), every standard state must reproduce the
// golden virtual times bit-for-bit while still scavenging through the
// restructured Scavenge path — proving the ParScavenge branch and the
// serial extraction left the modeled machine untouched. An explicit
// ParScavenge=false config must match the implicit default exactly.
func TestGoldenParScavengeOff(t *testing.T) {
	for _, st := range bench.StandardStates() {
		st := st
		t.Run(st.Name, func(t *testing.T) {
			type outcome struct {
				vms   []int64
				stats core.Stats
			}
			run := func(explicitOff bool) outcome {
				s := st
				if explicitOff {
					base := s.Config
					s.Config = func() core.Config {
						cfg := base()
						cfg.ParScavenge = false
						return cfg
					}
				}
				sys, err := bench.NewBenchSystem(s)
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Shutdown()
				var o outcome
				for _, b := range []string{"printClassHierarchy", "decompileClass"} {
					vms, err := bench.RunMacro(sys, b)
					if err != nil {
						t.Fatal(err)
					}
					if want := goldenVMS[st.Name][b]; vms != want {
						t.Errorf("%s %s: vms = %d, want golden %d", st.Name, b, vms, want)
					}
					o.vms = append(o.vms, vms)
				}
				o.stats = sys.Stats()
				return o
			}
			implicit, explicit := run(false), run(true)
			if !reflect.DeepEqual(implicit, explicit) {
				t.Errorf("%s: explicit ParScavenge=false diverges from the default:\ndefault:  %+v\nexplicit: %+v",
					st.Name, implicit, explicit)
			}
			if implicit.stats.Heap.Scavenges == 0 {
				t.Errorf("%s: no scavenges ran; the serial path went unexercised", st.Name)
			}
			if implicit.stats.Heap.ParScavenges != 0 {
				t.Errorf("%s: parallel scavenges ran in a default config (%d); the feature must be off",
					st.Name, implicit.stats.Heap.ParScavenges)
			}
		})
	}
}

// TestGoldenConcMarkOff: with the SATB concurrent marker compiled in
// but disabled (the default), every standard state must reproduce the
// golden virtual times bit-for-bit — the deletion-barrier hook in the
// store funnels and the restructured full-collection entry are required
// to be invisible when the feature is off — and an explicit
// ConcMark=false config must match the implicit default exactly.
func TestGoldenConcMarkOff(t *testing.T) {
	for _, st := range bench.StandardStates() {
		st := st
		t.Run(st.Name, func(t *testing.T) {
			type outcome struct {
				vms   []int64
				stats core.Stats
			}
			run := func(explicitOff bool) outcome {
				s := st
				if explicitOff {
					base := s.Config
					s.Config = func() core.Config {
						cfg := base()
						cfg.ConcMark = false
						return cfg
					}
				}
				sys, err := bench.NewBenchSystem(s)
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Shutdown()
				var o outcome
				for _, b := range []string{"printClassHierarchy", "decompileClass"} {
					vms, err := bench.RunMacro(sys, b)
					if err != nil {
						t.Fatal(err)
					}
					if want := goldenVMS[st.Name][b]; vms != want {
						t.Errorf("%s %s: vms = %d, want golden %d", st.Name, b, vms, want)
					}
					o.vms = append(o.vms, vms)
				}
				o.stats = sys.Stats()
				return o
			}
			implicit, explicit := run(false), run(true)
			if !reflect.DeepEqual(implicit, explicit) {
				t.Errorf("%s: explicit ConcMark=false diverges from the default:\ndefault:  %+v\nexplicit: %+v",
					st.Name, implicit, explicit)
			}
			hs := implicit.stats.Heap
			if hs.ConcMarkCycles != 0 || hs.ConcMarkSlices != 0 || hs.ConcMarkShaded != 0 {
				t.Errorf("%s: concurrent marking ran in a default config (cycles=%d slices=%d shades=%d); the feature must be off",
					st.Name, hs.ConcMarkCycles, hs.ConcMarkSlices, hs.ConcMarkShaded)
			}
		})
	}
}

// TestGoldenConcMarkDeterminism: with the concurrent marker ON under
// the deterministic scheduler, two identical runs of every standard
// state must agree bit-for-bit — virtual times and the complete Stats
// snapshot, concmark counters included. The mark slices interleave with
// the mutator at safepoints only, so the whole cycle is replayable.
func TestGoldenConcMarkDeterminism(t *testing.T) {
	for _, st := range bench.StandardStates() {
		st := st
		t.Run(st.Name, func(t *testing.T) {
			type outcome struct {
				vms   []int64
				stats core.Stats
			}
			run := func() outcome {
				s := st
				base := s.Config
				s.Config = func() core.Config {
					cfg := base()
					cfg.ConcMark = true
					return cfg
				}
				sys, err := bench.NewBenchSystem(s)
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Shutdown()
				var o outcome
				for _, b := range []string{"printClassHierarchy", "decompileClass"} {
					vms, err := bench.RunMacro(sys, b)
					if err != nil {
						t.Fatal(err)
					}
					o.vms = append(o.vms, vms)
				}
				o.stats = sys.Stats()
				return o
			}
			first, second := run(), run()
			if !reflect.DeepEqual(first, second) {
				t.Errorf("%s: two -concmark runs diverge:\nfirst:  %+v\nsecond: %+v",
					st.Name, first, second)
			}
		})
	}
}

func TestGoldenDeterminism(t *testing.T) {
	for _, st := range bench.StandardStates() {
		st := st
		t.Run(st.Name, func(t *testing.T) {
			sys, err := bench.NewBenchSystem(st)
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Shutdown()
			for _, b := range []string{"printClassHierarchy", "decompileClass"} {
				vms, err := bench.RunMacro(sys, b)
				if err != nil {
					t.Fatal(err)
				}
				if want := goldenVMS[st.Name][b]; vms != want {
					t.Errorf("%s %s: vms = %d, want golden %d", st.Name, b, vms, want)
				}
			}
			stats := sys.VM.Stats()
			want := goldenStats[st.Name]
			if stats.Sends != want.sends || stats.CacheHits != want.hits ||
				stats.CacheMisses != want.misses || stats.DictProbes != want.dict {
				t.Errorf("%s counters: sends=%d hits=%d misses=%d dict=%d, want %d/%d/%d/%d",
					st.Name, stats.Sends, stats.CacheHits, stats.CacheMisses, stats.DictProbes,
					want.sends, want.hits, want.misses, want.dict)
			}
			if stats.ICHits != 0 || stats.ICMisses != 0 || stats.ICFills != 0 {
				t.Errorf("%s: inline caches active in a default config (hits=%d misses=%d fills=%d); they must be off",
					st.Name, stats.ICHits, stats.ICMisses, stats.ICFills)
			}
		})
	}
}

// TestGoldenJITOff: with the msjit template tier compiled in but
// disabled (the default), every standard state must reproduce the
// golden virtual times and counters bit-for-bit, and an explicit
// JIT=false config must match the implicit default exactly — proving
// the tier's hooks (loadContext, send-path split, flush points) left
// the interpreted machine untouched.
func TestGoldenJITOff(t *testing.T) {
	for _, st := range bench.StandardStates() {
		st := st
		t.Run(st.Name, func(t *testing.T) {
			type outcome struct {
				vms   []int64
				stats core.Stats
			}
			run := func(explicitOff bool) outcome {
				s := st
				if explicitOff {
					base := s.Config
					s.Config = func() core.Config {
						cfg := base()
						cfg.JIT = false
						return cfg
					}
				}
				sys, err := bench.NewBenchSystem(s)
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Shutdown()
				var o outcome
				for _, b := range []string{"printClassHierarchy", "decompileClass"} {
					vms, err := bench.RunMacro(sys, b)
					if err != nil {
						t.Fatal(err)
					}
					if want := goldenVMS[st.Name][b]; vms != want {
						t.Errorf("%s %s: vms = %d, want golden %d", st.Name, b, vms, want)
					}
					o.vms = append(o.vms, vms)
				}
				o.stats = sys.Stats()
				return o
			}
			implicit, explicit := run(false), run(true)
			if !reflect.DeepEqual(implicit, explicit) {
				t.Errorf("%s: explicit JIT=false diverges from the default:\ndefault:  %+v\nexplicit: %+v",
					st.Name, implicit, explicit)
			}
			if implicit.stats.Interp.JITCompiles != 0 || implicit.stats.Interp.JITBytecodes != 0 {
				t.Errorf("%s: template tier active in a default config (compiles=%d bytecodes=%d); it must be off",
					st.Name, implicit.stats.Interp.JITCompiles, implicit.stats.Interp.JITBytecodes)
			}
		})
	}
}

// TestGoldenJITOn: the tier's whole contract in one test — with JIT on,
// every standard state must still produce the golden virtual times and
// a Stats snapshot bit-identical to the interpreted run except for the
// tier's own three counters (which must show the compiler actually
// ran). Compiled bytecodes charge through the same cost table at the
// same points, so nothing else may move.
func TestGoldenJITOn(t *testing.T) {
	for _, st := range bench.StandardStates() {
		st := st
		t.Run(st.Name, func(t *testing.T) {
			type outcome struct {
				vms   []int64
				stats core.Stats
			}
			run := func(jit bool) outcome {
				s := st
				if jit {
					base := s.Config
					s.Config = func() core.Config {
						cfg := base()
						cfg.JIT = true
						return cfg
					}
				}
				sys, err := bench.NewBenchSystem(s)
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Shutdown()
				var o outcome
				for _, b := range []string{"printClassHierarchy", "decompileClass"} {
					vms, err := bench.RunMacro(sys, b)
					if err != nil {
						t.Fatal(err)
					}
					if want := goldenVMS[st.Name][b]; vms != want {
						t.Errorf("%s %s (jit=%v): vms = %d, want golden %d", st.Name, b, jit, vms, want)
					}
					o.vms = append(o.vms, vms)
				}
				o.stats = sys.Stats()
				return o
			}
			off, on := run(false), run(true)
			if on.stats.Interp.JITCompiles == 0 || on.stats.Interp.JITBytecodes == 0 {
				t.Errorf("%s: JIT run compiled nothing (compiles=%d bytecodes=%d)",
					st.Name, on.stats.Interp.JITCompiles, on.stats.Interp.JITBytecodes)
			}
			neutral := on
			neutral.stats.Interp.JITCompiles = 0
			neutral.stats.Interp.JITDeopts = 0
			neutral.stats.Interp.JITBytecodes = 0
			if !reflect.DeepEqual(off, neutral) {
				t.Errorf("%s: JIT on shifts virtual behavior:\noff: vms=%v stats=%+v\non:  vms=%v stats=%+v",
					st.Name, off.vms, off.stats, on.vms, on.stats)
			}
		})
	}
}
