// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the in-text experiments. Each reports its
// measured *virtual* milliseconds as the custom metric "vms" (the
// simulated Firefly's clock; deterministic), alongside Go's host-time
// metrics for the simulator itself.
//
//	go test -bench=Table2 -benchmem .
//	go test -bench=. -benchmem .
package mst_test

import (
	"fmt"
	"testing"

	"mst/internal/bench"
	"mst/internal/core"
	"mst/internal/heap"
	"mst/internal/interp"
)

// benchSystem boots one system for a state, failing the benchmark on
// error.
func benchSystem(b *testing.B, st bench.State) *core.System {
	b.Helper()
	sys, err := bench.NewBenchSystem(st)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Shutdown)
	return sys
}

// BenchmarkTable2 reproduces Table 2: every macro benchmark under every
// system state. The "vms" metric is the virtual time the paper's table
// reports (in virtual milliseconds).
func BenchmarkTable2(b *testing.B) {
	for _, st := range bench.StandardStates() {
		st := st
		b.Run(st.Name, func(b *testing.B) {
			sys := benchSystem(b, st)
			for _, mb := range bench.MacroBenchmarks {
				mb := mb
				b.Run(mb.Selector, func(b *testing.B) {
					var total int64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						ms, err := bench.RunMacro(sys, mb.Selector)
						if err != nil {
							b.Fatal(err)
						}
						total += ms
					}
					b.ReportMetric(float64(total)/float64(b.N), "vms")
				})
			}
		})
	}
}

// BenchmarkFigure2 reproduces Figure 2: the normalized overhead of each
// non-baseline state on one representative benchmark, reported as the
// metric "norm" (time / baseline time).
func BenchmarkFigure2(b *testing.B) {
	const probe = "printClassHierarchy"
	baselineSys := benchSystem(b, bench.StandardStates()[0])
	// Warm once, then measure: repeated runs settle as caches fill and
	// data tenures, and the comparison must be warm-to-warm.
	if _, err := bench.RunMacro(baselineSys, probe); err != nil {
		b.Fatal(err)
	}
	base, err := bench.RunMacro(baselineSys, probe)
	if err != nil {
		b.Fatal(err)
	}
	for _, st := range bench.StandardStates()[1:] {
		st := st
		b.Run(st.Name, func(b *testing.B) {
			sys := benchSystem(b, st)
			if _, err := bench.RunMacro(sys, probe); err != nil {
				b.Fatal(err)
			}
			var norm float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms, err := bench.RunMacro(sys, probe)
				if err != nil {
					b.Fatal(err)
				}
				norm = float64(ms) / float64(base)
			}
			b.ReportMetric(norm, "norm")
		})
	}
}

// BenchmarkFreeContextList reproduces the §3.2 claim (worst-case
// overhead 160% serialized vs 65% replicated): the same busy-state
// benchmark under the two free-context-list policies.
func BenchmarkFreeContextList(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		policy interp.FreeCtxPolicy
	}{
		{"SharedLocked", interp.FreeCtxSharedLocked},
		{"Replicated", interp.FreeCtxPerProcessor},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			st := bench.State{
				Name: "busy-" + cfg.name,
				Config: func() core.Config {
					c := core.DefaultConfig()
					c.FreeContexts = cfg.policy
					return c
				},
				Background: func(s *core.System) error { return s.SpawnBusyProcesses(4) },
			}
			sys := benchSystem(b, st)
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms, err := bench.RunMacro(sys, "printClassHierarchy")
				if err != nil {
					b.Fatal(err)
				}
				total += ms
			}
			b.ReportMetric(float64(total)/float64(b.N), "vms")
		})
	}
}

// BenchmarkMethodCache reproduces the §3.2 claim that the serialized
// shared cache made MS run "much too slowly" until replicated.
func BenchmarkMethodCache(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		policy interp.CachePolicy
	}{
		{"SharedLocked", interp.CacheSharedLocked},
		{"Replicated", interp.CacheReplicated},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			st := bench.State{
				Name: "busy-" + cfg.name,
				Config: func() core.Config {
					c := core.DefaultConfig()
					c.MethodCache = cfg.policy
					return c
				},
				Background: func(s *core.System) error { return s.SpawnBusyProcesses(4) },
			}
			sys := benchSystem(b, st)
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms, err := bench.RunMacro(sys, "findAllImplementors")
				if err != nil {
					b.Fatal(err)
				}
				total += ms
			}
			b.ReportMetric(float64(total)/float64(b.N), "vms")
		})
	}
}

// BenchmarkAllocPolicy measures the paper's §4 future-work hypothesis:
// replicating the allocation areas relieves allocation contention under
// busy competition.
func BenchmarkAllocPolicy(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		policy heap.AllocPolicy
	}{
		{"Serialized", heap.AllocSerialized},
		{"PerProcessor", heap.AllocPerProcessor},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			st := bench.State{
				Name: "busy-" + cfg.name,
				Config: func() core.Config {
					c := core.DefaultConfig()
					c.Alloc = cfg.policy
					return c
				},
				Background: func(s *core.System) error { return s.SpawnBusyProcesses(4) },
			}
			sys := benchSystem(b, st)
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms, err := bench.RunMacro(sys, "createInspectorView")
				if err != nil {
					b.Fatal(err)
				}
				total += ms
			}
			b.ReportMetric(float64(total)/float64(b.N), "vms")
		})
	}
}

// BenchmarkScavenge reproduces the §3.1 scavenging arithmetic: with
// eden scaled as k·s, the per-benchmark scavenge count stays roughly
// constant as processors are added; reported as metrics "scavenges" and
// "gcshare%".
func BenchmarkScavenge(b *testing.B) {
	for k := 1; k <= 5; k++ {
		k := k
		b.Run(fmt.Sprintf("procs-%d", k), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Processors = k
			cfg.EdenWords = (8 << 10) * k
			cfg.SurvivorWords = (2 << 10) * k
			st := bench.State{
				Name:   fmt.Sprintf("scavenge-%d", k),
				Config: func() core.Config { return cfg },
				Background: func(s *core.System) error {
					return s.SpawnBusyProcesses(k - 1)
				},
			}
			sys := benchSystem(b, st)
			var scav uint64
			var share float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				before := sys.Stats().Heap
				elapsed, err := sys.EvaluateInt(
					"| t0 s | t0 := self millisecondClockValue. s := 0. " +
						"1 to: 30000 do: [:i | s := s + (i bitAnd: 255). " +
						"i \\\\ 10 = 0 ifTrue: [(Array new: 8) at: 1 put: i]]. " +
						"self millisecondClockValue - t0")
				if err != nil {
					b.Fatal(err)
				}
				after := sys.Stats().Heap
				scav = after.Scavenges - before.Scavenges
				if elapsed > 0 {
					share = float64(after.ScavengeTime-before.ScavengeTime) /
						float64(elapsed) / 1000 * 100
				}
			}
			b.ReportMetric(float64(scav), "scavenges")
			b.ReportMetric(share, "gcshare%")
		})
	}
}

// BenchmarkInterpreter measures raw simulator throughput (host-side):
// bytecodes per host second while running a compute-bound workload.
func BenchmarkInterpreter(b *testing.B) {
	sys := benchSystem(b, bench.StandardStates()[0])
	b.ResetTimer()
	var bytecodes uint64
	for i := 0; i < b.N; i++ {
		before := sys.Stats().Interp.Bytecodes
		if _, err := sys.EvaluateInt("| s | s := 0. 1 to: 20000 do: [:i | s := s + i]. s"); err != nil {
			b.Fatal(err)
		}
		bytecodes += sys.Stats().Interp.Bytecodes - before
	}
	b.ReportMetric(float64(bytecodes)/b.Elapsed().Seconds(), "bytecodes/s")
}

// BenchmarkSendDispatch measures the host-side cost of the send fast
// path: a tight loop of dynamically-dispatched sends, reported with
// allocation counts (the dispatch path itself must not allocate). Run
// for the default config and for MS+ (inline caches + 2-way cache) to
// see the host cost of each lookup organization.
func BenchmarkSendDispatch(b *testing.B) {
	configs := []struct {
		name   string
		config func() core.Config
	}{
		{"default", core.DefaultConfig},
		{"msplus", core.MSPlusConfig},
	}
	const src = `| r s |
		r := DispatchProbe new.
		s := 0.
		1 to: 2000 do: [:i | s := s + (r one) + (r two)].
		s`
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			sys := benchSystem(b, bench.State{Name: cfg.name, Config: cfg.config})
			for _, setup := range []string{
				"Object subclass: 'DispatchProbe' instanceVariableNames: '' category: 'Bench'",
				"DispatchProbe compile: 'one ^1' classified: 'bench'",
				"DispatchProbe compile: 'two ^2' classified: 'bench'",
			} {
				if _, err := sys.Evaluate(setup); err != nil {
					b.Fatal(err)
				}
			}
			var sends uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				before := sys.Stats().Interp.Sends
				if _, err := sys.EvaluateInt(src); err != nil {
					b.Fatal(err)
				}
				sends += sys.Stats().Interp.Sends - before
			}
			b.ReportMetric(float64(sends)/b.Elapsed().Seconds(), "sends/s")
		})
	}
}
