package mst_test

import (
	"bytes"
	"strings"
	"testing"

	"mst"
)

func newSys(t *testing.T, cfg mst.Config) *mst.System {
	t.Helper()
	sys, err := mst.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	t.Cleanup(sys.Shutdown)
	return sys
}

func TestPublicAPIQuickstart(t *testing.T) {
	sys := newSys(t, mst.DefaultConfig())
	out, err := sys.Evaluate("(1 to: 100) inject: 0 into: [:a :b | a + b]")
	if err != nil || out != "5050" {
		t.Fatalf("Evaluate = %q, %v", out, err)
	}
	if n, err := sys.EvaluateInt("6 * 7"); err != nil || n != 42 {
		t.Fatalf("EvaluateInt = %d, %v", n, err)
	}
	if err := sys.FileIn("t.st", `Object subclass: #Api
	instanceVariableNames: ''
	category: 'T'!

!Api methodsFor: 't'!
answer
	^42! !
`); err != nil {
		t.Fatal(err)
	}
	if n, _ := sys.EvaluateInt("Api new answer"); n != 42 {
		t.Fatalf("filed-in method answered %d", n)
	}
}

func TestPublicAPIStates(t *testing.T) {
	for _, cfg := range []mst.Config{mst.DefaultConfig(), mst.BaselineConfig()} {
		sys := newSys(t, cfg)
		if n, err := sys.EvaluateInt("3 + 4"); err != nil || n != 7 {
			t.Fatalf("%v: %d, %v", cfg.Mode, n, err)
		}
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	cfg := mst.DefaultConfig()
	cfg.MethodCache = mst.CacheSharedLocked
	cfg.FreeContexts = mst.FreeCtxSharedLocked
	cfg.Alloc = mst.AllocPerProcessor
	sys := newSys(t, cfg)
	if n, err := sys.EvaluateInt("(1 to: 50) sum"); err != nil || n != 1275 {
		t.Fatalf("policies: %d, %v", n, err)
	}
}

func TestPublicAPIBackgroundAndStats(t *testing.T) {
	sys := newSys(t, mst.DefaultConfig())
	if err := sys.SpawnIdleProcesses(2); err != nil {
		t.Fatal(err)
	}
	if err := sys.SpawnBusyProcesses(1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.EvaluateInt("(1 to: 500) sum"); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Interp.Bytecodes == 0 || st.Heap.Allocations == 0 || len(st.Procs) != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if sys.VirtualTime() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestPublicAPISnapshotRoundTrip(t *testing.T) {
	sys := newSys(t, mst.DefaultConfig())
	if _, err := sys.Evaluate("Smalltalk at: 'K' put: 7"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := mst.LoadImage(3, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Shutdown()
	if n, err := loaded.EvaluateInt("K"); err != nil || n != 7 {
		t.Fatalf("loaded K = %d, %v", n, err)
	}
}

func TestPublicAPIDeterminism(t *testing.T) {
	run := func() (string, mst.Time) {
		sys := newSys(t, mst.DefaultConfig())
		out, err := sys.Evaluate("((1 to: 30) collect: [:i | i * i]) sum")
		if err != nil {
			t.Fatal(err)
		}
		return out, sys.VirtualTime()
	}
	o1, t1 := run()
	o2, t2 := run()
	if o1 != o2 || t1 != t2 {
		t.Fatalf("nondeterministic: %q/%v vs %q/%v", o1, t1, o2, t2)
	}
}

func TestPublicAPITranscript(t *testing.T) {
	sys := newSys(t, mst.DefaultConfig())
	if _, err := sys.Evaluate("Transcript show: 'api'; cr"); err != nil {
		t.Fatal(err)
	}
	if got := sys.TranscriptText(); !strings.Contains(got, "api") {
		t.Fatalf("transcript = %q", got)
	}
}
