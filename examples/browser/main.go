// Browser: the programming-environment queries the paper's macro
// benchmarks exercise, driven as a user would drive a Smalltalk-80
// browser — class hierarchy, implementors, senders, definitions, and
// method decompilation, all computed by Smalltalk code over the live
// image's metaobjects.
package main

import (
	"fmt"
	"log"
	"strings"

	"mst"
)

func main() {
	sys, err := mst.NewSystem(mst.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	show := func(title, expr string) {
		out, err := sys.Evaluate(expr)
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		fmt.Printf("== %s ==\n%s\n\n", title, unquote(out))
	}

	show("class hierarchy below Collection", "Collection printHierarchy")
	show("definition of Semaphore", "Semaphore definitionString")
	show("implementors of printOn:", `| ws |
		ws := WriteStream on: (String new: 64).
		(Smalltalk allImplementorsOf: #printOn:) do: [:cls |
			ws nextPutAll: cls name asString; space].
		ws contents`)
	show("senders of subclassResponsibility", `| ws |
		ws := WriteStream on: (String new: 64).
		(Smalltalk allCallsOn: #subclassResponsibility) do: [:m |
			ws print: m; space].
		ws contents`)
	show("selectors of Semaphore by category", `| ws |
		ws := WriteStream on: (String new: 64).
		Semaphore categories do: [:cat |
			ws nextPutAll: cat; nextPutAll: ': '.
			(Semaphore selectorsInCategory: cat) do: [:sel |
				ws print: sel; space].
			ws cr].
		ws contents`)
	show("decompiled Semaphore>>critical:",
		"(Semaphore compiledMethodAt: #critical:) decompileString")
	show("inspector on 3 -> 'four'", `| ws |
		ws := WriteStream on: (String new: 64).
		(Inspector on: 3 -> 'four') fields do: [:assoc |
			ws nextPutAll: assoc key; nextPutAll: ' = '.
			ws nextPutAll: assoc value; cr].
		ws contents`)
}

func unquote(s string) string {
	if len(s) >= 2 && strings.HasPrefix(s, "'") && strings.HasSuffix(s, "'") {
		s = s[1 : len(s)-1]
	}
	return strings.ReplaceAll(s, "''", "'")
}
