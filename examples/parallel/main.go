// Parallel: the point of Multiprocessor Smalltalk — real parallel
// speedup for Smalltalk Processes, using only the standard Process and
// Semaphore abstractions (the paper's constraint: no new user-visible
// concurrency mechanisms).
//
// Four workers count primes in disjoint ranges; a semaphore collects
// their completions. The same program runs on a one-processor and a
// five-processor machine, and the virtual elapsed time shows the
// speedup.
package main

import (
	"fmt"
	"log"

	"mst"
)

// The workload. One note for Smalltalk-80 veterans: blocks are not
// closures (their temps live in the home context), so the four forks
// are written out textually rather than forked from a loop whose
// variable they would share.
const program = `| done results t0 elapsed |
	done := Semaphore new.
	results := Array new: 4.
	t0 := self millisecondClockValue.
	[results at: 1 put: (PrimeCounter countFrom: 1 to: 2000). done signal] fork.
	[results at: 2 put: (PrimeCounter countFrom: 2001 to: 4000). done signal] fork.
	[results at: 3 put: (PrimeCounter countFrom: 4001 to: 6000). done signal] fork.
	[results at: 4 put: (PrimeCounter countFrom: 6001 to: 8000). done signal] fork.
	done wait. done wait. done wait. done wait.
	elapsed := self millisecondClockValue - t0.
	Array with: ((results at: 1) + (results at: 2) + (results at: 3) + (results at: 4)) with: elapsed`

const primeCounter = `Object subclass: #PrimeCounter
	instanceVariableNames: ''
	category: 'Demo'!

!PrimeCounter class methodsFor: 'counting'!
countFrom: start to: stop
	| n |
	n := 0.
	start to: stop do: [:i | i isPrime ifTrue: [n := n + 1]].
	^n! !
`

func run(processors int) (primes, elapsedMS int64) {
	cfg := mst.DefaultConfig()
	cfg.Processors = processors
	sys, err := mst.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()
	if err := sys.FileIn("primes.st", primeCounter); err != nil {
		log.Fatal(err)
	}
	out, err := sys.Evaluate(program)
	if err != nil {
		log.Fatal(err)
	}
	// out is "(total elapsed )"
	if _, err := fmt.Sscanf(out, "(%d %d )", &primes, &elapsedMS); err != nil {
		log.Fatalf("unexpected result %q: %v", out, err)
	}
	return primes, elapsedMS
}

func main() {
	p1, t1 := run(1)
	p5, t5 := run(5)
	if p1 != p5 {
		log.Fatalf("prime counts disagree: %d vs %d", p1, p5)
	}
	fmt.Printf("primes below 8000:            %d (both machines agree)\n", p1)
	fmt.Printf("1 processor:                  %d virtual ms\n", t1)
	fmt.Printf("5 processors:                 %d virtual ms\n", t5)
	fmt.Printf("parallel speedup:             %.2fx\n", float64(t1)/float64(t5))
}
