// Quickstart: boot Multiprocessor Smalltalk, evaluate expressions, use
// the Transcript, and inspect the system's statistics.
package main

import (
	"fmt"
	"log"

	"mst"
)

func main() {
	// A five-processor MS system, like the Firefly the paper used.
	sys, err := mst.NewSystem(mst.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	// Evaluate answers the result's printString, produced by the
	// image's own printing code.
	for _, expr := range []string{
		"3 + 4 * 2",
		"(1 to: 100) inject: 0 into: [:sum :each | sum + each]",
		"'multiprocessor smalltalk' asUppercase",
		"(1 to: 20) select: [:n | n isPrime]",
		"Smalltalk allClasses size",
		"Object subclass: 'Point' instanceVariableNames: 'x y' category: 'Demo'",
		"Point compile: 'setX: ax y: ay x := ax. y := ay' classified: 'accessing'",
		"Point compile: 'printOn: s s nextPutAll: ''(''. x printOn: s. s nextPutAll: '' @ ''. y printOn: s. s nextPutAll: '')''' classified: 'printing'",
		"(Point new setX: 3 y: 4)",
	} {
		out, err := sys.Evaluate(expr)
		if err != nil {
			log.Fatalf("%s: %v", expr, err)
		}
		fmt.Printf("%-70s => %s\n", expr, out)
	}

	// The Transcript is the serialized display output queue.
	if _, err := sys.Evaluate("Transcript show: 'hello from the image'; cr"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTranscript: %q\n", sys.TranscriptText())

	st := sys.Stats()
	fmt.Printf("\nexecuted %d bytecodes, %d sends (%.1f%% cache hits), %d scavenges, virtual time %v\n",
		st.Interp.Bytecodes, st.Interp.Sends,
		100*float64(st.Interp.CacheHits)/float64(st.Interp.CacheHits+st.Interp.CacheMisses),
		st.Heap.Scavenges, sys.VirtualTime())
}
