// Snapshot: Smalltalk images are persistent worlds. This example builds
// state into a running image (a class, a global, a background Process),
// snapshots it — exercising the paper's activeProcess protocol — and
// resumes the world in a completely fresh machine.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mst"
)

func main() {
	sys, err := mst.NewSystem(mst.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	// Build a world: a class with behaviour, an instance bound to a
	// global, and a background Process mutating shared state.
	steps := []string{
		"Object subclass: 'Account' instanceVariableNames: 'balance' category: 'Demo'",
		"Account compile: 'init balance := 0' classified: 'initialize'",
		"Account compile: 'deposit: n balance := balance + n. ^balance' classified: 'transactions'",
		"Account compile: 'balance ^balance' classified: 'accessing'",
		"Smalltalk at: 'TheAccount' put: (Account new init; yourself)",
		"TheAccount deposit: 100",
		"Smalltalk at: 'Heartbeats' put: (Array with: 0)",
		"[[true] whileTrue: [Heartbeats at: 1 put: (Heartbeats at: 1) + 1. Processor yield]] fork",
	}
	for _, s := range steps {
		if _, err := sys.Evaluate(s); err != nil {
			log.Fatalf("%s: %v", s, err)
		}
	}

	var img bytes.Buffer
	if err := sys.SaveImage(&img); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot written: %d bytes\n", img.Len())

	// Mutate after the snapshot; the loaded image must not see this.
	if _, err := sys.Evaluate("TheAccount deposit: 999999"); err != nil {
		log.Fatal(err)
	}

	loaded, err := mst.LoadImage(5, bytes.NewReader(img.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	defer loaded.Shutdown()

	balance, err := loaded.Evaluate("TheAccount balance")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("balance in loaded image:   %s (the post-snapshot deposit is gone)\n", balance)

	before, _ := loaded.Evaluate("Heartbeats at: 1")
	after, err := loaded.Evaluate("1 to: 300 do: [:i | Processor yield]. Heartbeats at: 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("background heartbeats:     %s -> %s (the Process resumed from the snapshot)\n", before, after)
}
