// Pipeline: a three-stage concurrent pipeline built entirely from
// Smalltalk-80 abstractions — Processes and Semaphores (via
// SharedQueue) — running in parallel on the simulated Firefly. The
// paper's constraint was to add no new user-visible concurrency
// mechanisms; this is the kind of user-level parallelism MS enables.
//
// Stage 1 generates numbers, stage 2 squares them, stage 3 keeps the
// even squares and accumulates; a final semaphore joins the pipeline.
package main

import (
	"fmt"
	"log"

	"mst"
)

const program = `| gen sq done result |
	gen := SharedQueue new.
	sq := SharedQueue new.
	done := Semaphore new.
	result := Array with: 0 with: 0.

	"Stage 2: squares everything from gen onto sq; nil terminates."
	[[true] whileTrue: [
		| v |
		v := gen next.
		v isNil ifTrue: [sq nextPut: nil. done signal. ^nil].
		sq nextPut: v * v]] fork.

	"Stage 3: sums the even squares from sq."
	[[true] whileTrue: [
		| v |
		v := sq next.
		v isNil ifTrue: [done signal. ^nil].
		v even ifTrue: [
			result at: 1 put: (result at: 1) + v.
			result at: 2 put: (result at: 2) + 1]]] fork.

	"Stage 1: this Process generates."
	1 to: 50 do: [:i | gen nextPut: i].
	gen nextPut: nil.
	done wait. done wait.
	result`

func main() {
	cfg := mst.DefaultConfig()
	sys, err := mst.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	out, err := sys.Evaluate(program)
	if err != nil {
		log.Fatal(err)
	}
	var sum, count int64
	if _, err := fmt.Sscanf(out, "(%d %d )", &sum, &count); err != nil {
		log.Fatalf("unexpected result %q: %v", out, err)
	}
	fmt.Printf("pipeline processed 50 numbers on %d processors\n", cfg.Processors)
	fmt.Printf("even squares: %d of them, summing to %d\n", count, sum)

	// Cross-check in Go.
	var wantSum, wantCount int64
	for i := int64(1); i <= 50; i++ {
		if sq := i * i; sq%2 == 0 {
			wantSum += sq
			wantCount++
		}
	}
	if sum != wantSum || count != wantCount {
		log.Fatalf("pipeline result wrong: want %d/%d", wantSum, wantCount)
	}
	fmt.Println("matches the sequential Go computation")

	st := sys.Stats()
	fmt.Printf("process switches: %d, semaphore waits: %d, signals: %d\n",
		st.Interp.ProcessSwitches, st.Interp.SemWaits, st.Interp.SemSignals)
}
