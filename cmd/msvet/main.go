// Command msvet runs the repository's custom vet suite (virttime,
// lockpair, traceguard, heapwrite — see internal/msvet) over the whole
// module and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/msvet ./...
//
// The suite is a stdlib-only go/analysis-style driver (no module proxy
// in the build environment, so golang.org/x/tools and the
// `go vet -vettool` protocol are unavailable). Arguments are accepted
// for familiarity but the suite always analyzes the entire module
// containing the working directory.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"mst/internal/msvet"
)

func main() {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "msvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := msvet.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msvet: %v\n", err)
		os.Exit(2)
	}
	analyzers := msvet.Analyzers()
	findings, err := msvet.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msvet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "msvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("msvet: ok (%d packages, %d analyzers)\n", len(pkgs), len(analyzers))
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
