// Command msvet runs the repository's custom vet suite (see
// internal/msvet): the lexical passes (virttime, lockpair, traceguard,
// heapwrite, costcharge) and the call-graph-aware module passes
// (stwsafe, atomicguard, barrierflow, lockorder) over the whole module,
// and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/msvet ./...
//	go run ./cmd/msvet -json ./...       findings as JSON on stdout
//	go run ./cmd/msvet -v ./...          also echo //msvet: annotation
//	                                     justifications
//	go run ./cmd/msvet -lockgraph       emit the static lock-order graph
//	                                     as deterministic JSON and exit
//	go run ./cmd/msvet -dir path/to/pkg  analyze another module root
//	                                     (the fault-injection fixtures)
//
// The suite is a stdlib-only go/analysis-style driver (no module proxy
// in the build environment, so golang.org/x/tools and the
// `go vet -vettool` protocol are unavailable); type checking resolves
// the standard library through the GOROOT source importer. `./...`
// arguments are accepted for familiarity but the suite always analyzes
// the entire module containing the working directory (or -dir).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mst/internal/msvet"
)

func main() {
	jsonOut := flag.Bool("json", false, "print findings as JSON")
	verbose := flag.Bool("v", false, "echo //msvet: annotation justifications")
	lockgraph := flag.Bool("lockgraph", false, "emit the static lock-order graph as JSON and exit")
	dirFlag := flag.String("dir", "", "module root to analyze (default: the module containing the working directory)")
	flag.Parse()

	root := *dirFlag
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}
	mod, err := msvet.LoadTyped(root)
	if err != nil {
		fatal(err)
	}

	if *lockgraph {
		os.Stdout.Write(mod.LockGraph().Data().JSON())
		return
	}

	analyzers := msvet.Analyzers()
	findings, err := msvet.RunSuite(mod, analyzers)
	if err != nil {
		fatal(err)
	}

	if *verbose {
		for _, a := range mod.Ann.All {
			pos := mod.Fset.Position(a.Pos)
			just := a.Justification
			if just == "" {
				just = "(no justification given)"
			}
			fmt.Printf("msvet: annotation %s:%d: //msvet:%s %s — %s\n",
				pos.Filename, pos.Line, a.Kind, a.Target, just)
		}
	}

	if *jsonOut {
		type jsonFinding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(b, '\n'))
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "msvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("msvet: ok (%d packages, %d analyzers)\n", len(mod.Pkgs), len(analyzers))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "msvet: %v\n", err)
	os.Exit(2)
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
