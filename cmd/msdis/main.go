// Command msdis disassembles compiled methods: it boots the image,
// files in any given source files, and prints the bytecode of the
// requested methods (the engine behind the "decompile class" macro
// benchmark).
//
//	msdis Object printString          # one method
//	msdis -class Semaphore            # every method of a class
//	msdis -class Semaphore app.st     # after filing in app.st
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mst"
)

func main() {
	class := flag.String("class", "", "disassemble every method of this class")
	flag.Parse()

	cfg := mst.BaselineConfig()
	sys, err := mst.NewSystem(cfg)
	check(err)
	defer sys.Shutdown()

	var positional []string
	for _, arg := range flag.Args() {
		if strings.HasSuffix(arg, ".st") {
			src, err := os.ReadFile(arg)
			check(err)
			check(sys.FileIn(arg, string(src)))
			continue
		}
		positional = append(positional, arg)
	}

	switch {
	case *class != "":
		out, err := sys.Evaluate(fmt.Sprintf(`| ws |
			ws := WriteStream on: (String new: 256).
			(Smalltalk classNamed: '%s') methodsDo: [:m |
				ws nextPutAll: m decompileString.
				ws cr].
			ws contents`, *class))
		check(err)
		fmt.Println(unquote(out))
	case len(positional) == 2:
		out, err := sys.Evaluate(fmt.Sprintf(
			"((Smalltalk classNamed: '%s') compiledMethodAt: #%s) decompileString",
			positional[0], positional[1]))
		check(err)
		fmt.Println(unquote(out))
	default:
		fmt.Fprintln(os.Stderr, "usage: msdis [-class Name] [Class selector] [files.st...]")
		os.Exit(2)
	}
}

// unquote strips the Smalltalk printString quoting from a string result.
func unquote(s string) string {
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		s = s[1 : len(s)-1]
	}
	return strings.ReplaceAll(s, "''", "'")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "msdis:", err)
		os.Exit(1)
	}
}
