// Command msbench regenerates every table and figure from the paper's
// evaluation section (Pallas & Ungar, PLDI 1988):
//
//	msbench -table2            Table 2: macro benchmarks × system states
//	msbench -figure2           Figure 2: Table 2 normalized, with bars
//	msbench -table3            Table 3: strategy applications
//	msbench -ablation freelist     §3.2: free context list 160% → 65%
//	msbench -ablation methodcache  §3.2: serialized cache "much too slow"
//	msbench -ablation alloc        §4:   replicated allocation areas
//	msbench -ablation scavenge     §3.1: k·s eden scaling, ~3% GC share
//	msbench -ablation inlinecache  extension: send-site MIC/PIC vs method cache
//	msbench -ablation parscavenge  extension: cooperative parallel scavenging
//	                           at 1/2/4/8 simulated processors vs serial
//	msbench -ablation jit      extension: msjit template tier vs interpreter,
//	                           host speedup with bit-identical virtual times
//	msbench -ablation serve    extension: multi-tenant image server under a
//	                           fixed open-loop load at 1/2/4/8 executors,
//	                           throughput and latency percentiles
//	msbench -ablation concmark extension: SATB concurrent old-space marking
//	                           vs the stop-the-world mark-compact over a
//	                           growing live set; the concurrent windows
//	                           stay bounded while the serial pause grows
//	msbench -json results.json     machine-readable Table 2 + IC ablation
//	msbench -jit               include the msjit ablation in -json, -gate,
//	                           and -fingerprint runs
//	msbench -concmark          include the concurrent-marking ablation in
//	                           -json, -gate, and -fingerprint runs
//	msbench -trace out.json    flight-record one busy benchmark; export
//	                           Chrome trace-event JSON for ui.perfetto.dev
//	msbench -profile           selector-level virtual-time profile of the
//	                           same run (combine with -trace for both)
//	msbench -allocprofile      allocation-site profile of the same run:
//	                           objects/words per Class>>selector, survivor
//	                           and tenure rates, object-age census
//	msbench -gcreport          GC latency rollup of a busy benchmark:
//	                           pause/phase percentiles, dispatch latency,
//	                           lock waits, allocation sites; combine with
//	                           -parscavenge for the critical-path table
//	msbench -sanitize          run every state plain and under the mscheck
//	                           invariant sanitizer; report violations,
//	                           bit-identity, and host-side checker cost;
//	                           add -lockgraph GRAPH.json (the output of
//	                           msvet -lockgraph) to verify the observed
//	                           acquisition order is a subgraph of the
//	                           static lock-order graph
//	msbench -parallel          true-parallel host sweep: the same fixed
//	                           workload on 1..GOMAXPROCS real goroutine
//	                           processors, wall-clock speedup vs the
//	                           deterministic driver
//	msbench -gate BENCH.json   regression gate: rerun the suite and
//	                           compare against a checked-in baseline
//	                           (exact on virtual times and counters,
//	                           -gate-tolerance on relative host cost)
//	msbench -fingerprint       print the deterministic fingerprint (the
//	                           json report with host times zeroed); CI
//	                           runs it twice and diffs the outputs
//	msbench -all               everything above
//
// All times are virtual milliseconds on the simulated Firefly; runs are
// deterministic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mst/internal/bench"
	"mst/internal/msvet"
)

func main() {
	table2 := flag.Bool("table2", false, "run the Table 2 matrix")
	figure2 := flag.Bool("figure2", false, "run Table 2 and print it normalized (Figure 2)")
	table3 := flag.Bool("table3", false, "print Table 3 (strategy applications)")
	ablation := flag.String("ablation", "", "run one ablation: freelist|methodcache|alloc|scavenge|inlinecache|parscavenge|jit|serve|concmark")
	jitFlag := flag.Bool("jit", false, "include the msjit ablation in -json/-gate/-fingerprint runs")
	concFlag := flag.Bool("concmark", false, "include the concurrent-marking ablation in -json/-gate/-fingerprint runs")
	jsonPath := flag.String("json", "", "write machine-readable results (Table 2 + inline-cache ablation) to this file")
	sweep := flag.Bool("sweep", false, "processor sweep (extension: busy overhead vs processor count)")
	micro := flag.Bool("micro", false, "micro benchmark suite (extension: per-operation static costs)")
	paradigms := flag.Bool("paradigms", false, "concurrent-programming style comparison (extension)")
	contention := flag.Bool("contention", false, "per-state lock contention report (extension)")
	tracePath := flag.String("trace", "", "flight-record a busy benchmark and write Perfetto JSON to this file")
	profile := flag.Bool("profile", false, "print the selector-level virtual-time profile of a busy benchmark")
	allocProf := flag.Bool("allocprofile", false, "print the allocation-site profile of a busy benchmark (objects/words per Class>>selector, survivor and tenure rates)")
	gcReport := flag.Bool("gcreport", false, "print the GC latency rollup of a busy benchmark (pause/phase percentiles, lock waits, allocation sites)")
	parScav := flag.Bool("parscavenge", false, "use the cooperative parallel scavenger for the -gcreport run (adds the critical-path table)")
	sanFlag := flag.Bool("sanitize", false, "run every state under the mscheck invariant sanitizer and report overhead")
	lockgraphPath := flag.String("lockgraph", "", "with -sanitize: static lock graph JSON (msvet -lockgraph) to cross-check the observed acquisition order against")
	parallel := flag.Bool("parallel", false, "run the true-parallel host sweep (goroutine processors, wall-clock speedup)")
	gatePath := flag.String("gate", "", "compare a fresh run against this baseline json and fail on regression")
	gateTol := flag.Float64("gate-tolerance", 0.20, "allowed drift in normalized host cost for -gate (fraction)")
	fingerprint := flag.Bool("fingerprint", false, "print the deterministic fingerprint (json report, host times zeroed)")
	all := flag.Bool("all", false, "run everything")
	flag.Parse()

	if !*table2 && !*figure2 && !*table3 && *ablation == "" && *jsonPath == "" && !*sweep && !*contention && !*micro && !*paradigms && *tracePath == "" && !*profile && !*allocProf && !*gcReport && !*sanFlag && !*parallel && *gatePath == "" && !*fingerprint && !*all {
		flag.Usage()
		os.Exit(2)
	}

	var t2 *bench.Table2
	needT2 := *table2 || *figure2 || *all
	if needT2 {
		fmt.Fprintln(os.Stderr, "running the four system states × eight macro benchmarks...")
		var err error
		t2, err = bench.RunTable2()
		check(err)
	}
	if *table2 || *all {
		fmt.Println(t2.Format())
	}
	if *figure2 || *all {
		fmt.Println(t2.FormatFigure2())
	}
	if *table3 || *all {
		fmt.Println(bench.FormatTable3())
	}

	runAblation := func(name string) {
		switch name {
		case "freelist":
			a, err := bench.RunFreeListAblation()
			check(err)
			fmt.Println(a.Format())
		case "methodcache":
			a, err := bench.RunMethodCacheAblation()
			check(err)
			fmt.Println(a.Format())
		case "alloc":
			a, err := bench.RunAllocAblation()
			check(err)
			fmt.Println(a.Format())
		case "scavenge":
			rows, err := bench.RunScavengeExperiment()
			check(err)
			fmt.Println(bench.FormatScavenge(rows))
		case "inlinecache":
			a, err := bench.RunInlineCacheAblation()
			check(err)
			fmt.Println(a.Format())
		case "parscavenge":
			a, err := bench.RunParScavengeAblation()
			check(err)
			fmt.Println(bench.FormatParScavenge(a))
		case "jit":
			a, err := bench.RunJITAblation()
			check(err)
			fmt.Println(a.Format())
		case "serve":
			a, err := bench.RunServeBench()
			check(err)
			fmt.Println(a.Format())
		case "concmark":
			a, err := bench.RunConcMarkAblation()
			check(err)
			fmt.Println(bench.FormatConcMark(a))
		default:
			fmt.Fprintf(os.Stderr, "unknown ablation %q\n", name)
			os.Exit(2)
		}
	}
	if *ablation != "" {
		runAblation(*ablation)
	}
	if *all {
		for _, name := range []string{"freelist", "methodcache", "alloc", "scavenge", "inlinecache", "parscavenge", "jit", "serve", "concmark"} {
			fmt.Fprintf(os.Stderr, "running ablation %s...\n", name)
			runAblation(name)
		}
	}
	if *sweep || *all {
		fmt.Fprintln(os.Stderr, "running processor sweep...")
		rows, err := bench.RunProcessorSweep()
		check(err)
		fmt.Println(bench.FormatSweep(rows))
	}
	if *micro || *all {
		fmt.Fprintln(os.Stderr, "running micro suite...")
		r, err := bench.RunMicroSuite()
		check(err)
		fmt.Println(r.Format())
	}
	if *paradigms || *all {
		fmt.Fprintln(os.Stderr, "running paradigm comparison...")
		r, err := bench.RunParadigms()
		check(err)
		fmt.Println(r.Format())
	}
	if *contention || *all {
		fmt.Fprintln(os.Stderr, "running contention report...")
		r, err := bench.RunContentionReport()
		check(err)
		fmt.Println(r.Format())
	}
	if *tracePath != "" || *profile || *allocProf {
		fmt.Fprintln(os.Stderr, "running observed benchmark (flight recorder on)...")
		r, err := bench.RunObserved(*tracePath, *profile, *allocProf)
		check(err)
		r.Format(os.Stdout)
		if *tracePath != "" {
			fmt.Fprintf(os.Stderr, "wrote %s (open in ui.perfetto.dev)\n", *tracePath)
		}
	}
	if *gcReport || *all {
		fmt.Fprintln(os.Stderr, "running gc report (histograms + allocation profiler on)...")
		rep, err := bench.RunGCReport(*parScav)
		check(err)
		fmt.Print(rep)
	}
	if *sanFlag || *all {
		fmt.Fprintln(os.Stderr, "running sanitized states (plain + mscheck each)...")
		var staticEdges []string
		if *lockgraphPath != "" {
			data, err := os.ReadFile(*lockgraphPath)
			check(err)
			var g msvet.LockGraphData
			check(json.Unmarshal(data, &g))
			staticEdges = g.EdgeStrings()
		}
		r, err := bench.RunSanitizeStatic(staticEdges)
		check(err)
		fmt.Println(r.Format())
		if !r.Clean() {
			os.Exit(1)
		}
	}
	var par *bench.ParallelReport
	if *parallel || *all {
		fmt.Fprintln(os.Stderr, "running parallel host sweep (goroutine processors)...")
		var err error
		par, err = bench.RunParallelSweep()
		check(err)
		fmt.Println(bench.FormatParallel(par))
	}

	// -json, -gate, and -fingerprint all need the same fresh report;
	// measure once and reuse it.
	var report *bench.JSONReport
	if *jsonPath != "" || *gatePath != "" || *fingerprint {
		// Open the output first: fail on a bad path before spending
		// time measuring.
		var f *os.File
		if *jsonPath != "" {
			var err error
			f, err = os.Create(*jsonPath)
			check(err)
		}
		fmt.Fprintln(os.Stderr, "running json report...")
		var err error
		report, err = bench.RunJSONReport(*jitFlag, *concFlag)
		check(err)
		report.Parallel = par
		if f != nil {
			check(report.Write(f))
			check(f.Close())
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
	}
	if *fingerprint {
		check(bench.Fingerprint(report, os.Stdout))
	}
	if *gatePath != "" {
		baseline, err := bench.LoadBaseline(*gatePath)
		check(err)
		g := bench.RunGate(baseline, report, *gatePath, *gateTol)
		fmt.Print(g.Format())
		if !g.OK() {
			os.Exit(1)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "msbench:", err)
		os.Exit(1)
	}
}
