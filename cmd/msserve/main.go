// Command msserve is the multi-tenant Smalltalk image server: it boots
// the base image once, clones it into N independent tenant sessions,
// and serves an open-loop request schedule against them with admission
// control and conflict-class scheduling (one executor owns each
// tenant's requests outright).
//
//	msserve -tenants 4 -requests 500          serve a seeded open-loop run
//	msserve -parallel                         real executor goroutines;
//	                                          virtual results bit-identical
//	msserve -trace serve.json                 per-tenant Perfetto tracks
//	msserve -stdin                            interactive: "TENANT<TAB>EXPR"
//	                                          lines, one response per line
//
// The run report on stdout is purely virtual-time derived: two runs
// with the same flags produce byte-identical stdout (the serve-smoke CI
// job diffs it). Host-side timings go to stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mst/internal/serve"
	"mst/internal/serve/loadgen"
)

func main() {
	var (
		tenants   = flag.Int("tenants", 4, "independent tenant sessions")
		executors = flag.Int("executors", 2, "front-end executors (conflict-class workers)")
		requests  = flag.Int("requests", 500, "open-loop requests to schedule")
		rate      = flag.Int64("rate", 2000, "mean virtual inter-arrival gap in ticks")
		seed      = flag.Uint64("seed", 1988, "arrival-schedule seed")
		queue     = flag.Int("queue", serve.DefaultQueueDepth, "executor queue depth (admission bound)")
		share     = flag.Int("share", 0, "per-tenant queue share (0: half the queue)")
		hot       = flag.Int("hot", -1, "hot tenant id (-1: uniform load)")
		hotPct    = flag.Int("hotpct", 80, "percent of arrivals routed to the hot tenant")
		parallel  = flag.Bool("parallel", false, "run executors as real goroutines")
		traceOut  = flag.String("trace", "", "write Chrome trace-event JSON (per-tenant tracks) to this file")
		stdin     = flag.Bool("stdin", false, "serve TENANT<TAB>EXPR lines from stdin instead of a schedule")
	)
	flag.Parse()

	t0 := time.Now()
	cp, err := serve.BootCheckpoint()
	if err != nil {
		fatal(err)
	}
	bootHost := time.Since(t0)

	traceEvents := 0
	if *traceOut != "" {
		traceEvents = 1 << 16
	}
	srv, err := serve.NewServer(serve.Config{
		Tenants:     *tenants,
		Executors:   *executors,
		QueueDepth:  *queue,
		TenantShare: *share,
		Parallel:    *parallel,
		TraceEvents: traceEvents,
		Checkpoint:  cp,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Shutdown()

	if *stdin {
		serveStdin(srv)
		return
	}

	arrivals := loadgen.Schedule(loadgen.Config{
		Seed:         *seed,
		Requests:     *requests,
		MeanGapTicks: *rate,
		Tenants:      *tenants,
		Kinds:        len(serve.Catalog),
		HotTenant:    *hot,
		HotPercent:   *hotPct,
	})
	t1 := time.Now()
	rep, err := srv.Run(arrivals)
	if err != nil {
		fatal(err)
	}
	runHost := time.Since(t1)

	// Deterministic report on stdout; host-side wall times on stderr so
	// the CI byte-diff sees only virtual numbers.
	fmt.Print(rep.Format())
	fmt.Fprintf(os.Stderr, "host: boot %v, run %v\n", bootHost.Round(time.Microsecond), runHost.Round(time.Microsecond))

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s\n", *traceOut)
	}
}

// serveStdin is the interactive request/response loop: each input line
// is "TENANT<TAB>EXPR" (or just "EXPR" for tenant 0); each output line
// is the tenant's printString response.
func serveStdin(srv *serve.Server) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		tenant, expr := 0, line
		if id, rest, ok := strings.Cut(line, "\t"); ok {
			if n, err := strconv.Atoi(strings.TrimSpace(id)); err == nil {
				tenant, expr = n, rest
			}
		}
		out, err := srv.Eval(tenant, expr)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		fmt.Printf("%d\t%s\n", tenant, out)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msserve:", err)
	os.Exit(1)
}
