// Command mst runs Multiprocessor Smalltalk: it boots the image on the
// simulated Firefly, files in any source files given as arguments, and
// evaluates an expression (or reads expressions from stdin, one per
// line).
//
//	mst -e "3 + 4"
//	mst -e "Transcript show: 'hi'" -transcript
//	mst -procs 5 -busy 4 -e "MacroBenchmark..." app.st
//	mst -trace out.json -e "..."     flight-record the run; open the
//	                                 JSON in ui.perfetto.dev
//	mst -profile -e "..."            selector-level virtual-time profile
//	mst -allocprofile -e "..."       allocation-site profile: objects and
//	                                 words per Class>>selector, survivor
//	                                 and tenure rates, object-age census
//	mst -gcreport -e "..."           GC latency rollup: pause and phase
//	                                 percentiles, dispatch latency, lock
//	                                 waits, scavenge critical paths
//	mst -sanitize -e "..."           run under the mscheck invariant
//	                                 sanitizer; print its report, exit 1
//	                                 on any violation
//	mst -parallel -procs 4 -e "..."  true-parallel host mode: the four
//	                                 virtual processors run on real
//	                                 goroutines (results match, virtual
//	                                 times become schedule-dependent)
//	mst -parscavenge -e "..."        cooperative parallel scavenging:
//	                                 every processor copies survivors
//	                                 during the stop-the-world window
//	mst -concmark -e "..."           concurrent old-space marking: full
//	                                 collections mark in bounded slices
//	                                 between mutator quanta, with two
//	                                 short stop-the-world windows and a
//	                                 lazy free-list sweep
//	mst -jit -e "..."                msjit template tier: hot methods run
//	                                 as pre-specialized closure arrays
//	                                 (virtual times and results are
//	                                 bit-identical to the interpreter)
//	echo "Smalltalk allClasses size" | mst
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"mst"
)

func main() {
	expr := flag.String("e", "", "expression to evaluate")
	procs := flag.Int("procs", 5, "virtual processors")
	baseline := flag.Bool("baseline", false, "baseline BS mode (no multiprocessor support)")
	msplus := flag.Bool("msplus", false, "MS+ mode: inline caches (PIC) and 2-way method cache")
	ic := flag.String("ic", "", "inline-cache policy: off|mic|pic (overrides config default)")
	idle := flag.Int("idle", 0, "background idle Processes to fork")
	busy := flag.Int("busy", 0, "background busy Processes to fork")
	transcript := flag.Bool("transcript", false, "print the Transcript after evaluation")
	stats := flag.Bool("stats", false, "print system statistics after evaluation")
	tracePath := flag.String("trace", "", "flight-record the run and write Perfetto trace JSON to this file")
	profile := flag.Bool("profile", false, "print the selector-level virtual-time profile after evaluation")
	allocProf := flag.Bool("allocprofile", false, "print the allocation-site profile (objects/words per Class>>selector, survivor and tenure rates, age census) after evaluation")
	gcReport := flag.Bool("gcreport", false, "print the GC latency rollup (pause/phase percentiles, dispatch latency, lock waits, critical paths) after evaluation")
	sanFlag := flag.Bool("sanitize", false, "attach the mscheck invariant sanitizer; report violations and exit non-zero on any")
	parallel := flag.Bool("parallel", false, "true-parallel host mode: run virtual processors on real goroutines (wall-clock scheduling; virtual times become host-schedule-dependent)")
	parScav := flag.Bool("parscavenge", false, "cooperative parallel scavenging: all processors copy survivors during the stop-the-world window (works in both the deterministic and -parallel modes)")
	concMark := flag.Bool("concmark", false, "concurrent old-space marking: full collections run as SATB marking cycles with bounded stop-the-world windows and a lazy free-list sweep (works in both the deterministic and -parallel modes)")
	jitFlag := flag.Bool("jit", false, "msjit template tier: compile hot methods to pre-specialized closure arrays (bit-identical virtual behavior)")
	flag.Parse()

	cfg := mst.DefaultConfig()
	if *baseline {
		cfg = mst.BaselineConfig()
	}
	if *msplus {
		cfg = mst.MSPlusConfig()
	}
	cfg.Processors = *procs
	switch *ic {
	case "":
	case "off":
		cfg.InlineCache = mst.ICOff
	case "mic":
		cfg.InlineCache = mst.ICMono
	case "pic":
		cfg.InlineCache = mst.ICPoly
	default:
		fmt.Fprintf(os.Stderr, "mst: unknown -ic policy %q (want off|mic|pic)\n", *ic)
		os.Exit(2)
	}
	if *tracePath != "" {
		cfg.TraceEvents = mst.DefaultTraceEvents
	}
	cfg.Profile = *profile
	cfg.AllocProfile = *allocProf
	cfg.Histograms = *gcReport
	cfg.Sanitize = *sanFlag
	cfg.Parallel = *parallel
	cfg.ParScavenge = *parScav
	cfg.ConcMark = *concMark
	cfg.JIT = *jitFlag
	sys, err := mst.NewSystem(cfg)
	check(err)
	defer sys.Shutdown()

	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		check(err)
		check(sys.FileIn(path, string(src)))
	}
	check(sys.SpawnIdleProcesses(*idle))
	check(sys.SpawnBusyProcesses(*busy))

	eval := func(src string) {
		out, err := sys.Evaluate(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Println(out)
	}

	switch {
	case *expr != "":
		eval(*expr)
	case len(flag.Args()) == 0 || stdinPiped():
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			eval(line)
		}
	}

	if *transcript {
		fmt.Print(sys.TranscriptText())
	}
	if *profile {
		rep, err := sys.ProfileReport(25)
		check(err)
		fmt.Fprint(os.Stderr, rep)
	}
	if *allocProf {
		rep, err := sys.AllocProfileReport(10)
		check(err)
		fmt.Fprint(os.Stderr, rep)
	}
	if *gcReport {
		rep, err := sys.GCReport()
		check(err)
		fmt.Fprint(os.Stderr, rep)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		check(err)
		check(sys.WriteTrace(f))
		check(f.Close())
		fmt.Fprintf(os.Stderr, "mst: wrote %s (open in ui.perfetto.dev)\n", *tracePath)
	}
	if *sanFlag {
		rep, err := sys.SanitizeReport()
		check(err)
		fmt.Fprint(os.Stderr, rep)
		if !sys.Sanitizer().Clean() {
			os.Exit(1)
		}
	}
	if *stats {
		st := sys.Stats()
		fmt.Fprintf(os.Stderr, "bytecodes=%d sends=%d cacheHits=%d cacheMisses=%d switches=%d\n",
			st.Interp.Bytecodes, st.Interp.Sends, st.Interp.CacheHits,
			st.Interp.CacheMisses, st.Interp.ProcessSwitches)
		if st.Interp.ICHits+st.Interp.ICMisses > 0 {
			fmt.Fprintf(os.Stderr, "icHits=%d icMisses=%d icFills=%d polySites=%d megaSites=%d\n",
				st.Interp.ICHits, st.Interp.ICMisses, st.Interp.ICFills,
				st.Interp.ICPolySites, st.Interp.ICMegaSites)
		}
		if st.Interp.JITCompiles+st.Interp.JITDeopts+st.Interp.JITBytecodes > 0 {
			fmt.Fprintf(os.Stderr, "jitCompiles=%d jitDeopts=%d jitBytecodes=%d\n",
				st.Interp.JITCompiles, st.Interp.JITDeopts, st.Interp.JITBytecodes)
		}
		fmt.Fprintf(os.Stderr, "allocs=%d scavenges=%d copiedWords=%d virtualTime=%v\n",
			st.Heap.Allocations, st.Heap.Scavenges, st.Heap.CopiedWords, sys.VirtualTime())
		for _, l := range st.Locks {
			if l.Acquisitions > 0 {
				fmt.Fprintf(os.Stderr, "lock %-14s acq=%-8d contended=%-6d spin=%v\n",
					l.Name, l.Acquisitions, l.Contentions, l.SpinTime)
			}
		}
	}
}

func stdinPiped() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice == 0
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mst:", err)
		os.Exit(1)
	}
}
