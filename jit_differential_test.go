package mst_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"mst/internal/bench"
	"mst/internal/core"
	"mst/internal/trace"
)

// Differential tests for the msjit template tier: the tier's contract
// is that turning it on changes host time and nothing else. Every test
// here runs the same workload with the tier off and on and compares
// virtual results — bit-for-bit in deterministic mode, answer-for-
// answer in parallel mode — then injects each deoptimization cause and
// checks the tier falls back cleanly.

// neutralJIT zeroes the tier's own three counters, the only Stats
// fields allowed to differ between an interpreted and a compiled run.
func neutralJIT(st core.Stats) core.Stats {
	st.Interp.JITCompiles = 0
	st.Interp.JITDeopts = 0
	st.Interp.JITBytecodes = 0
	return st
}

// withJIT wraps a config constructor, forcing the tier on or off.
func withJIT(config func() core.Config, jit bool) func() core.Config {
	return func() core.Config {
		cfg := config()
		cfg.JIT = jit
		return cfg
	}
}

// TestJITDifferentialTable2 sweeps every Table 2 macro benchmark under
// the production MS config and under MS+ (the tier's designed home,
// with inline caches), interpreter versus template tier, and demands
// bit-identical virtual times and a bit-identical Stats snapshot.
func TestJITDifferentialTable2(t *testing.T) {
	configs := []struct {
		name   string
		config func() core.Config
	}{
		{"ms", core.DefaultConfig},
		{"ms-plus", core.MSPlusConfig},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			run := func(jit bool) (map[string]int64, core.Stats) {
				sys, err := bench.NewBenchSystem(bench.State{
					Name:   cfg.name,
					Config: withJIT(cfg.config, jit),
				})
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Shutdown()
				vms := map[string]int64{}
				for _, mb := range bench.MacroBenchmarks {
					ms, err := bench.RunMacro(sys, mb.Selector)
					if err != nil {
						t.Fatalf("%s (jit=%v): %v", mb.Selector, jit, err)
					}
					vms[mb.Selector] = ms
				}
				return vms, sys.Stats()
			}
			offVMS, offStats := run(false)
			onVMS, onStats := run(true)
			for _, mb := range bench.MacroBenchmarks {
				if offVMS[mb.Selector] != onVMS[mb.Selector] {
					t.Errorf("%s: virtual time diverges — interpreted %d ms, compiled %d ms",
						mb.Selector, offVMS[mb.Selector], onVMS[mb.Selector])
				}
			}
			if onStats.Interp.JITCompiles == 0 || onStats.Interp.JITBytecodes == 0 {
				t.Errorf("tier never ran (compiles=%d bytecodes=%d)",
					onStats.Interp.JITCompiles, onStats.Interp.JITBytecodes)
			}
			if offStats.Interp.JITCompiles != 0 || offStats.Interp.JITBytecodes != 0 {
				t.Errorf("interpreted control ran jit machinery (compiles=%d bytecodes=%d)",
					offStats.Interp.JITCompiles, offStats.Interp.JITBytecodes)
			}
			if off, on := neutralJIT(offStats), neutralJIT(onStats); !reflect.DeepEqual(off, on) {
				t.Errorf("stats diverge beyond the tier's own counters:\noff: %+v\non:  %+v", off, on)
			}
		})
	}
}

// primeCounterSource is the examples/parallel workload class.
const primeCounterSource = `Object subclass: #PrimeCounter
	instanceVariableNames: ''
	category: 'Demo'!

!PrimeCounter class methodsFor: 'counting'!
countFrom: start to: stop
	| n |
	n := 0.
	start to: stop do: [:i | i isPrime ifTrue: [n := n + 1]].
	^n! !
`

// jitExampleCorpus mirrors the examples/ programs as deterministic
// expressions: quickstart arithmetic and image queries, the browser's
// metaobject walks, the pipeline's Process/Semaphore plumbing, and the
// parallel example's fork/join — everything a user program does.
var jitExampleCorpus = []string{
	// examples/quickstart
	"3 + 4 * 2",
	"(1 to: 100) inject: 0 into: [:sum :each | sum + each]",
	"'multiprocessor smalltalk' asUppercase",
	"((1 to: 20) select: [:n | n isPrime]) size",
	"Smalltalk allClasses size",
	// examples/browser
	"Collection printHierarchy size",
	"(Smalltalk allImplementorsOf: #printOn:) size",
	"(Smalltalk allCallsOn: #subclassResponsibility) size",
	"(Semaphore compiledMethodAt: #critical:) decompileString size",
	// examples/pipeline: three Processes over SharedQueues.
	`| gen sq done result |
	gen := SharedQueue new.
	sq := SharedQueue new.
	done := Semaphore new.
	result := Array with: 0 with: 0.
	[[true] whileTrue: [
		| v |
		v := gen next.
		v isNil ifTrue: [sq nextPut: nil. done signal. ^nil].
		sq nextPut: v * v]] fork.
	[[true] whileTrue: [
		| v |
		v := sq next.
		v isNil ifTrue: [done signal. ^nil].
		v even ifTrue: [
			result at: 1 put: (result at: 1) + v.
			result at: 2 put: (result at: 2) + 1]]] fork.
	1 to: 50 do: [:i | gen nextPut: i].
	gen nextPut: nil.
	done wait. done wait.
	(result at: 1) + (result at: 2)`,
	// examples/parallel: four forked workers joined by a semaphore.
	jitParallelProgram,
}

// jitParallelProgram is the examples/parallel fork/join workload,
// returning only the schedule-independent answer (no elapsed time).
const jitParallelProgram = `| done results |
	done := Semaphore new.
	results := Array new: 4.
	[results at: 1 put: (PrimeCounter countFrom: 1 to: 2000). done signal] fork.
	[results at: 2 put: (PrimeCounter countFrom: 2001 to: 4000). done signal] fork.
	[results at: 3 put: (PrimeCounter countFrom: 4001 to: 6000). done signal] fork.
	[results at: 4 put: (PrimeCounter countFrom: 6001 to: 8000). done signal] fork.
	done wait. done wait. done wait. done wait.
	(results at: 1) + (results at: 2) + (results at: 3) + (results at: 4)`

// TestJITDifferentialExamples runs the examples corpus on one
// interpreted and one compiled system, in order, comparing every
// answer, the final virtual clock, and the full Stats snapshot.
func TestJITDifferentialExamples(t *testing.T) {
	type outcome struct {
		answers []string
		vt      core.Stats
		clock   int64
	}
	run := func(jit bool) outcome {
		cfg := core.MSPlusConfig()
		cfg.JIT = jit
		sys, err := core.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Shutdown()
		if err := sys.FileIn("primes.st", primeCounterSource); err != nil {
			t.Fatal(err)
		}
		var o outcome
		for i, expr := range jitExampleCorpus {
			out, err := sys.Evaluate(expr)
			if err != nil {
				t.Fatalf("corpus[%d] (jit=%v): %v", i, jit, err)
			}
			o.answers = append(o.answers, out)
		}
		o.vt = sys.Stats()
		o.clock = int64(sys.VirtualTime())
		return o
	}
	off, on := run(false), run(true)
	for i := range jitExampleCorpus {
		if off.answers[i] != on.answers[i] {
			t.Errorf("corpus[%d]: answers diverge — interpreted %q, compiled %q",
				i, off.answers[i], on.answers[i])
		}
	}
	if off.clock != on.clock {
		t.Errorf("virtual clock diverges: interpreted %d, compiled %d", off.clock, on.clock)
	}
	if on.vt.Interp.JITCompiles == 0 {
		t.Error("tier never compiled on the examples corpus")
	}
	if o, n := neutralJIT(off.vt), neutralJIT(on.vt); !reflect.DeepEqual(o, n) {
		t.Errorf("stats diverge beyond the tier's counters:\noff: %+v\non:  %+v", o, n)
	}
}

// TestJITDifferentialParallel runs the fork/join workload in the
// true-parallel host mode (goroutine processors). Virtual clocks are
// host-schedule-dependent there, so the differential contract weakens
// to answers: the compiled tier must produce the same results, with
// the tier demonstrably active, on every run of a short stress loop.
func TestJITDifferentialParallel(t *testing.T) {
	run := func(jit bool) string {
		cfg := core.MSPlusConfig()
		cfg.Parallel = true
		cfg.JIT = jit
		sys, err := core.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Shutdown()
		if err := sys.FileIn("primes.st", primeCounterSource); err != nil {
			t.Fatal(err)
		}
		out, err := sys.Evaluate(jitParallelProgram)
		if err != nil {
			t.Fatalf("parallel run (jit=%v): %v", jit, err)
		}
		if jit {
			if st := sys.Stats().Interp; st.JITCompiles == 0 || st.JITBytecodes == 0 {
				t.Errorf("parallel tier never ran (compiles=%d bytecodes=%d)",
					st.JITCompiles, st.JITBytecodes)
			}
		}
		return out
	}
	want := run(false)
	// Several compiled runs: parallel scheduling varies, the answer may
	// not (this is also the -race stress target in CI).
	for i := 0; i < 3; i++ {
		if got := run(true); got != want {
			t.Fatalf("parallel run %d: compiled answer %q, interpreted answer %q", i, got, want)
		}
	}
}

// jitFaultSystem boots the tier with the flight recorder attached, so
// each fault-injection test can assert both the deopt counter and the
// recorded reason.
func jitFaultSystem(t *testing.T) *core.System {
	t.Helper()
	cfg := core.MSPlusConfig()
	cfg.Processors = 1
	cfg.JIT = true
	cfg.TraceEvents = trace.DefaultRingSize
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Shutdown)
	return sys
}

// deoptReasons counts KJITDeopt events in the ring by reason name.
func deoptReasons(sys *core.System) map[string]int {
	counts := map[string]int{}
	for _, ev := range sys.VM.M.Recorder().Events() {
		if ev.Kind == trace.KJITDeopt {
			counts[ev.Str]++
		}
	}
	return counts
}

// expectDeopt runs one fault-injection scenario: evaluate the trigger,
// check the answer, and demand at least one deopt with the expected
// recorded reason plus a clean follow-up evaluation.
func expectDeopt(t *testing.T, sys *core.System, trigger string, want int64, reason string) {
	t.Helper()
	before := sys.Stats().Interp.JITDeopts
	got, err := sys.EvaluateInt(trigger)
	if err != nil {
		t.Fatalf("trigger: %v", err)
	}
	if got != want {
		t.Errorf("trigger answered %d, want %d", got, want)
	}
	if delta := sys.Stats().Interp.JITDeopts - before; delta == 0 {
		t.Errorf("no deopt recorded (expected reason %q)", reason)
	}
	if n := deoptReasons(sys)[reason]; n == 0 {
		t.Errorf("no %q deopt event in the ring (have %v)", reason, deoptReasons(sys))
	}
	// Clean continuation: the system still computes after falling back.
	if n, err := sys.EvaluateInt("(1 to: 10) inject: 0 into: [:a :b | a + b]"); err != nil || n != 55 {
		t.Errorf("post-deopt evaluation broken: %d, %v", n, err)
	}
}

// TestJITDeoptFaultInjection drives each deoptimization cause on
// purpose — megamorphic retirement, decompiler attach, snapshot,
// thisContext, and doesNotUnderstand: — and checks the tier bails to
// the interpreter at a bytecode boundary with the right recorded
// reason and keeps producing correct answers.
func TestJITDeoptFaultInjection(t *testing.T) {
	t.Run("megamorphic", func(t *testing.T) {
		sys := jitFaultSystem(t)
		// Nine receiver classes at one send site: the 8-way polymorphic
		// inline cache retires the site, which must deopt and blacklist
		// the running compiled method.
		src := `Object subclass: #MegaDriver
	instanceVariableNames: ''
	category: 'T'!

!MegaDriver methodsFor: 't'!
hit: x
	^x poke! !
`
		for k := 1; k <= 9; k++ {
			src += fmt.Sprintf(`Object subclass: #Mega%d
	instanceVariableNames: ''
	category: 'T'!

!Mega%d methodsFor: 't'!
poke
	^%d! !
`, k, k, k)
		}
		if err := sys.FileIn("mega.st", src); err != nil {
			t.Fatal(err)
		}
		// Warm hit: monomorphically until compiled, then march eight
		// more classes through the same site; the ninth class retires
		// it mid-compiled-run. 30*1 + (2+..+9) = 74.
		trigger := `| d s |
	d := MegaDriver new.
	s := 0.
	1 to: 30 do: [:i | s := s + (d hit: Mega1 new)].
	s := s + (d hit: Mega2 new) + (d hit: Mega3 new) + (d hit: Mega4 new)
		+ (d hit: Mega5 new) + (d hit: Mega6 new) + (d hit: Mega7 new)
		+ (d hit: Mega8 new) + (d hit: Mega9 new).
	^s`
		expectDeopt(t, sys, trigger, 74, "megamorphic")
	})

	t.Run("decompile", func(t *testing.T) {
		sys := jitFaultSystem(t)
		// A method that decompiles itself while running: the decompiler
		// attach must demote the running compiled method to the
		// interpreter. The hotness counter restarts each time, so a
		// nine-iteration loop compiles and deopts repeatedly.
		src := `Object subclass: #DecProbe
	instanceVariableNames: ''
	category: 'T'!

!DecProbe methodsFor: 't'!
selfDecompile
	^(DecProbe compiledMethodAt: #selfDecompile) decompileString size! !
`
		if err := sys.FileIn("dec.st", src); err != nil {
			t.Fatal(err)
		}
		one, err := sys.EvaluateInt("DecProbe new selfDecompile")
		if err != nil {
			t.Fatal(err)
		}
		trigger := `| s |
	s := 0.
	1 to: 9 do: [:i | s := s + DecProbe new selfDecompile].
	^s`
		expectDeopt(t, sys, trigger, 9*one, "decompile")
	})

	t.Run("snapshot", func(t *testing.T) {
		sys := jitFaultSystem(t)
		path := filepath.Join(t.TempDir(), "fault.image")
		// The snapshot invalidates the whole tier (plans and hotness), so
		// a method that always snapshots can never get hot. Warm the
		// method with non-snapshotting calls; only the third, compiled
		// activation hits the primitive, which parks every Process and
		// must deopt the running frame.
		src := `Object subclass: #SnapProbe
	instanceVariableNames: ''
	category: 'T'!

!SnapProbe class methodsFor: 't'!
save: path onlyIf: flag
	flag ifTrue: [Smalltalk snapshotTo: path].
	^1! !
`
		if err := sys.FileIn("snap.st", src); err != nil {
			t.Fatal(err)
		}
		trigger := fmt.Sprintf(`| s |
	s := 0.
	1 to: 3 do: [:i | s := s + (SnapProbe save: '%s' onlyIf: i = 3)].
	^s`, path)
		expectDeopt(t, sys, trigger, 3, "snapshot")
	})

	t.Run("uncommon-bytecode", func(t *testing.T) {
		sys := jitFaultSystem(t)
		// thisContext compiles as a trap: perform the push, then bail
		// and pin the method to the interpreter.
		src := `Object subclass: #CtxProbe
	instanceVariableNames: ''
	category: 'T'!

!CtxProbe methodsFor: 't'!
mark
	thisContext.
	^7! !
`
		if err := sys.FileIn("ctx.st", src); err != nil {
			t.Fatal(err)
		}
		trigger := `| s |
	s := 0.
	1 to: 10 do: [:i | s := s + CtxProbe new mark].
	^s`
		expectDeopt(t, sys, trigger, 70, "uncommon-bytecode")
	})

	t.Run("dnu", func(t *testing.T) {
		sys := jitFaultSystem(t)
		// A hot method whose send always reships through
		// doesNotUnderstand: — the tier refuses to carry the reship
		// compiled and must bail each time it recompiles.
		src := `Object subclass: #DnuReceiver
	instanceVariableNames: ''
	category: 'T'!

!DnuReceiver methodsFor: 't'!
doesNotUnderstand: aMessage
	^3! !

Object subclass: #DnuDriver
	instanceVariableNames: ''
	category: 'T'!

!DnuDriver methodsFor: 't'!
poke: p
	^p zork! !
`
		if err := sys.FileIn("dnu.st", src); err != nil {
			t.Fatal(err)
		}
		trigger := `| d p s |
	d := DnuDriver new.
	p := DnuReceiver new.
	s := 0.
	1 to: 12 do: [:i | s := s + (d poke: p)].
	^s`
		expectDeopt(t, sys, trigger, 36, "dnu")
	})
}
